//! Adaptive compressed sets of cells over a fixed shape.
//!
//! The SubZero query executor represents the intermediate result of every
//! lineage-query step as "an in-memory boolean array with the same dimensions
//! as the input (backward query) or output (forward query) array" (§VI-C of
//! the paper).  [`CellSet`] is that structure.  It used to be a single dense
//! bitmap sized to the whole shape; it is now an adaptive, Roaring-style
//! chunked container: the linear index space is split into 2^16-cell chunks,
//! and each chunk independently stores its members as either
//!
//! * a **sparse** sorted `u16` vector (few scattered cells),
//! * a **run-length** list of inclusive `(start, last)` intervals
//!   (contiguous regions, e.g. full-array answers), or
//! * a **dense** 1024-word bitmap (heavily populated chunks),
//!
//! auto-promoting on density (sparse → dense past 4096 entries, runs → dense
//! past 2047 runs) and demoting again when [`CellSet::optimize`] or a union
//! re-normalises a chunk.  An empty set allocates nothing regardless of
//! shape, full-array answers cost a handful of runs, and the join can
//! intersect sorted scan indices against container words instead of probing
//! a giant bitmap per index.  Observable behaviour (membership, insertion
//! results, row-major iteration order, panics on shape mismatch) is
//! identical to the legacy dense bitmap; the proptests in
//! `tests/proptests.rs` hold the two representations in parity.

use crate::{Coord, Shape};

/// Log2 of the number of cells per chunk.
const CHUNK_BITS: u32 = 16;
/// Cells per chunk (65 536).
const CHUNK_CELLS: usize = 1 << CHUNK_BITS;
/// 64-bit words in a dense chunk bitmap.
const DENSE_WORDS: usize = CHUNK_CELLS / 64;
/// Bytes a dense chunk occupies; the promotion break-even point.
const DENSE_BYTES: usize = DENSE_WORDS * 8;
/// A sparse container past this many entries is promoted to dense
/// (Roaring's classic 4096: 2 bytes/entry * 4096 = 8 KiB = dense).
const SPARSE_MAX: usize = 4096;
/// A run container past this many runs is promoted to dense
/// (4 bytes/run * 2047 < 8 KiB).
const RUNS_MAX: usize = 2047;

/// How many containers of each representation a [`CellSet`] currently uses.
///
/// Reported by [`CellSet::repr_counts`]; the server bench records the mix of
/// answer representations in its `BENCH_server.json` stanza.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReprCounts {
    /// Chunks stored as sorted `u16` vectors.
    pub sparse: usize,
    /// Chunks stored as run-length interval lists.
    pub runs: usize,
    /// Chunks stored as 1024-word bitmaps.
    pub dense: usize,
}

impl ReprCounts {
    /// Total number of non-empty containers.
    pub fn total(&self) -> usize {
        self.sparse + self.runs + self.dense
    }

    /// Accumulates another count into this one.
    pub fn merge(&mut self, other: &ReprCounts) {
        self.sparse += other.sparse;
        self.runs += other.runs;
        self.dense += other.dense;
    }
}

/// One 2^16-cell chunk of the set.  `Sparse(vec![])` doubles as the empty
/// container so untouched chunks cost only the enum discriminant.
#[derive(Clone)]
enum Container {
    /// Sorted, de-duplicated chunk-local indices.
    Sparse(Vec<u16>),
    /// Sorted, non-adjacent inclusive `(start, last)` intervals.
    Runs(Vec<(u16, u16)>),
    /// Plain bitmap plus a cached population count.
    Dense {
        words: Box<[u64; DENSE_WORDS]>,
        len: u32,
    },
}

#[inline]
fn word_bit(lo: u16) -> (usize, u64) {
    ((lo >> 6) as usize, 1u64 << (lo & 63))
}

/// Cells covered by an inclusive run list.
fn runs_cell_count(runs: &[(u16, u16)]) -> usize {
    runs.iter()
        .map(|&(s, l)| (l as usize) - (s as usize) + 1)
        .sum()
}

/// Merges two sorted, non-adjacent run lists into one, coalescing
/// overlapping or adjacent intervals.
fn merge_runs(a: &[(u16, u16)], b: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out: Vec<(u16, u16)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x.0 <= y.0 {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        match out.last_mut() {
            Some(last) if (next.0 as u32) <= last.1 as u32 + 1 => last.1 = last.1.max(next.1),
            _ => out.push(next),
        }
    }
    out
}

/// Collapses a sorted unique index list into inclusive runs.
fn sparse_to_runs(v: &[u16]) -> Vec<(u16, u16)> {
    let mut out: Vec<(u16, u16)> = Vec::new();
    for &lo in v {
        match out.last_mut() {
            Some(last) if last.1 as u32 + 1 == lo as u32 => last.1 = lo,
            _ => out.push((lo, lo)),
        }
    }
    out
}

/// Population count of `words` restricted to the inclusive bit range
/// `start..=last`.
fn range_popcount(words: &[u64; DENSE_WORDS], start: u16, last: u16) -> usize {
    let (ws, bs) = ((start >> 6) as usize, (start & 63) as u32);
    let (wl, bl) = ((last >> 6) as usize, (last & 63) as u32);
    if ws == wl {
        let mask = (u64::MAX << bs) & (u64::MAX >> (63 - bl));
        return (words[ws] & mask).count_ones() as usize;
    }
    let mut n = (words[ws] & (u64::MAX << bs)).count_ones() as usize;
    for &w in &words[ws + 1..wl] {
        n += w.count_ones() as usize;
    }
    n + (words[wl] & (u64::MAX >> (63 - bl))).count_ones() as usize
}

/// Sets every bit in the inclusive range `start..=last`, returning how many
/// were newly set.
fn fill_range(words: &mut [u64; DENSE_WORDS], start: u16, last: u16) -> usize {
    let (ws, bs) = ((start >> 6) as usize, (start & 63) as u32);
    let (wl, bl) = ((last >> 6) as usize, (last & 63) as u32);
    let mut added = 0usize;
    let mut apply = |w: &mut u64, mask: u64| {
        added += (mask & !*w).count_ones() as usize;
        *w |= mask;
    };
    if ws == wl {
        apply(&mut words[ws], (u64::MAX << bs) & (u64::MAX >> (63 - bl)));
    } else {
        apply(&mut words[ws], u64::MAX << bs);
        for w in &mut words[ws + 1..wl] {
            apply(w, u64::MAX);
        }
        apply(&mut words[wl], u64::MAX >> (63 - bl));
    }
    added
}

impl Container {
    fn new() -> Self {
        Container::Sparse(Vec::new())
    }

    fn len(&self) -> usize {
        match self {
            Container::Sparse(v) => v.len(),
            Container::Runs(r) => runs_cell_count(r),
            Container::Dense { len, .. } => *len as usize,
        }
    }

    fn contains(&self, lo: u16) -> bool {
        match self {
            Container::Sparse(v) => v.binary_search(&lo).is_ok(),
            Container::Runs(r) => {
                let i = r.partition_point(|&(s, _)| s <= lo);
                i > 0 && r[i - 1].1 >= lo
            }
            Container::Dense { words, .. } => {
                let (wi, bit) = word_bit(lo);
                words[wi] & bit != 0
            }
        }
    }

    /// Inserts one chunk-local index, promoting to dense on overflow.
    /// Returns `true` if it was newly inserted.
    fn insert(&mut self, lo: u16) -> bool {
        let promote = match self {
            Container::Sparse(v) => match v.binary_search(&lo) {
                Ok(_) => return false,
                Err(pos) => {
                    v.insert(pos, lo);
                    v.len() > SPARSE_MAX
                }
            },
            Container::Runs(r) => {
                let i = r.partition_point(|&(s, _)| s <= lo);
                if i > 0 && r[i - 1].1 >= lo {
                    return false;
                }
                let prev_adj = i > 0 && r[i - 1].1 as u32 + 1 == lo as u32;
                let next_adj = i < r.len() && lo as u32 + 1 == r[i].0 as u32;
                match (prev_adj, next_adj) {
                    (true, true) => {
                        r[i - 1].1 = r[i].1;
                        r.remove(i);
                    }
                    (true, false) => r[i - 1].1 = lo,
                    (false, true) => r[i].0 = lo,
                    (false, false) => r.insert(i, (lo, lo)),
                }
                r.len() > RUNS_MAX
            }
            Container::Dense { words, len } => {
                let (wi, bit) = word_bit(lo);
                if words[wi] & bit != 0 {
                    return false;
                }
                words[wi] |= bit;
                *len += 1;
                false
            }
        };
        if promote {
            self.promote_to_dense();
        }
        true
    }

    /// Inserts the inclusive chunk-local range `start..=last`.  Returns how
    /// many cells were newly inserted.
    fn insert_range(&mut self, start: u16, last: u16) -> usize {
        match self {
            Container::Dense { words, len } => {
                let added = fill_range(words, start, last);
                *len += added as u32;
                added
            }
            Container::Runs(r) => {
                let before = runs_cell_count(r);
                // Fast path: strictly past the current tail (the wire decoder
                // feeds runs in increasing order).
                match r.last().copied() {
                    Some((_, tl)) if (start as u32) > tl as u32 + 1 => r.push((start, last)),
                    Some((ts, tl)) if start >= ts => {
                        if let Some(tail) = r.last_mut() {
                            tail.1 = tl.max(last);
                        }
                    }
                    None => r.push((start, last)),
                    _ => {
                        let merged = merge_runs(r, &[(start, last)]);
                        *r = merged;
                    }
                }
                let added = runs_cell_count(r) - before;
                if r.len() > RUNS_MAX {
                    self.promote_to_dense();
                }
                added
            }
            Container::Sparse(v) => {
                let before = v.len();
                let runs = merge_runs(&sparse_to_runs(v), &[(start, last)]);
                let added = runs_cell_count(&runs) - before;
                let promote = runs.len() > RUNS_MAX;
                *self = Container::Runs(runs);
                if promote {
                    self.promote_to_dense();
                }
                added
            }
        }
    }

    /// Rebuilds this container as a dense bitmap with the same members.
    fn promote_to_dense(&mut self) {
        let mut words = Box::new([0u64; DENSE_WORDS]);
        let len = match std::mem::replace(self, Container::new()) {
            Container::Sparse(v) => {
                for &lo in &v {
                    let (wi, bit) = word_bit(lo);
                    words[wi] |= bit;
                }
                v.len() as u32
            }
            Container::Runs(r) => {
                let mut n = 0u32;
                for &(s, l) in &r {
                    n += fill_range(&mut words, s, l) as u32;
                }
                n
            }
            Container::Dense { words: w, len } => {
                words = w;
                len
            }
        };
        *self = Container::Dense { words, len };
    }

    /// Extracts the member set as a sorted run list (exact, any variant).
    fn to_runs_vec(&self) -> Vec<(u16, u16)> {
        match self {
            Container::Sparse(v) => sparse_to_runs(v),
            Container::Runs(r) => r.clone(),
            Container::Dense { words, .. } => {
                let mut out = Vec::new();
                let mut lo = 0u32;
                while let Some(start) = next_set_bit(words, lo) {
                    let end = next_clear_bit(words, start + 1).unwrap_or(CHUNK_CELLS as u32);
                    out.push((start as u16, (end - 1) as u16));
                    lo = end + 1;
                    if lo > CHUNK_CELLS as u32 {
                        break;
                    }
                }
                out
            }
        }
    }

    /// Number of maximal runs in this container.
    fn count_runs(&self) -> usize {
        match self {
            Container::Sparse(v) => {
                let mut n = 0usize;
                let mut prev: Option<u16> = None;
                for &lo in v {
                    match prev {
                        Some(p) if p as u32 + 1 == lo as u32 => {}
                        _ => n += 1,
                    }
                    prev = Some(lo);
                }
                n
            }
            Container::Runs(r) => r.len(),
            Container::Dense { words, .. } => {
                // A run starts at every 0→1 transition: count bits set in w
                // whose predecessor bit (previous position, possibly in the
                // previous word) is clear.
                let mut n = 0usize;
                let mut carry = 0u64; // msb of the previous word, in bit 0
                for &w in words.iter() {
                    n += (w & !((w << 1) | carry)).count_ones() as usize;
                    carry = w >> 63;
                }
                n
            }
        }
    }

    /// Picks the smallest valid representation for the current contents.
    fn normalize(&mut self) {
        let len = self.len();
        if len == 0 {
            *self = Container::new();
            return;
        }
        let nruns = self.count_runs();
        let run_cost = 4 * nruns;
        let sparse_cost = 2 * len;
        if nruns <= RUNS_MAX && run_cost <= sparse_cost && run_cost <= DENSE_BYTES {
            if !matches!(self, Container::Runs(_)) {
                *self = Container::Runs(self.to_runs_vec());
            }
        } else if len <= SPARSE_MAX && sparse_cost <= DENSE_BYTES {
            if !matches!(self, Container::Sparse(_)) {
                let mut v = Vec::with_capacity(len);
                for (s, l) in self.to_runs_vec() {
                    v.extend(s..=l);
                }
                *self = Container::Sparse(v);
            }
        } else if !matches!(self, Container::Dense { .. }) {
            self.promote_to_dense();
        }
    }

    /// Heap bytes this container occupies.
    fn size_bytes(&self) -> usize {
        match self {
            Container::Sparse(v) => v.len() * 2,
            Container::Runs(r) => r.len() * 4,
            Container::Dense { .. } => DENSE_BYTES,
        }
    }
}

/// First set bit at or after bit position `from`, if any.
fn next_set_bit(words: &[u64; DENSE_WORDS], from: u32) -> Option<u32> {
    if from as usize >= CHUNK_CELLS {
        return None;
    }
    let mut wi = (from >> 6) as usize;
    let mut w = words[wi] & (u64::MAX << (from & 63));
    loop {
        if w != 0 {
            return Some((wi as u32) * 64 + w.trailing_zeros());
        }
        wi += 1;
        if wi == DENSE_WORDS {
            return None;
        }
        w = words[wi];
    }
}

/// First clear bit at or after bit position `from`, if any.
fn next_clear_bit(words: &[u64; DENSE_WORDS], from: u32) -> Option<u32> {
    if from as usize >= CHUNK_CELLS {
        return None;
    }
    let mut wi = (from >> 6) as usize;
    let mut w = !words[wi] & (u64::MAX << (from & 63));
    loop {
        if w != 0 {
            return Some((wi as u32) * 64 + w.trailing_zeros());
        }
        wi += 1;
        if wi == DENSE_WORDS {
            return None;
        }
        w = !words[wi];
    }
}

/// Iterates the chunk-local indices of one container in sorted order.
enum ChunkCursor<'a> {
    Sparse(std::slice::Iter<'a, u16>),
    Runs {
        runs: std::slice::Iter<'a, (u16, u16)>,
        cur: Option<(u32, u32)>,
    },
    Dense {
        words: &'a [u64; DENSE_WORDS],
        wi: usize,
        bits: u64,
    },
}

impl<'a> ChunkCursor<'a> {
    fn new(c: &'a Container) -> Self {
        match c {
            Container::Sparse(v) => ChunkCursor::Sparse(v.iter()),
            Container::Runs(r) => ChunkCursor::Runs {
                runs: r.iter(),
                cur: None,
            },
            Container::Dense { words, .. } => ChunkCursor::Dense {
                words,
                wi: 0,
                bits: words[0],
            },
        }
    }
}

impl Iterator for ChunkCursor<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            ChunkCursor::Sparse(it) => it.next().map(|&lo| lo as u32),
            ChunkCursor::Runs { runs, cur } => loop {
                if let Some((next, last)) = cur {
                    if *next <= *last {
                        let v = *next;
                        *next += 1;
                        return Some(v);
                    }
                }
                let &(s, l) = runs.next()?;
                *cur = Some((s as u32, l as u32));
            },
            ChunkCursor::Dense { words, wi, bits } => loop {
                if *bits != 0 {
                    let tz = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some((*wi as u32) * 64 + tz);
                }
                *wi += 1;
                if *wi == DENSE_WORDS {
                    return None;
                }
                *bits = words[*wi];
            },
        }
    }
}

/// A set of cells of an array of known [`Shape`], stored as adaptive
/// chunked containers (see the module docs).
#[derive(Clone)]
pub struct CellSet {
    shape: Shape,
    /// One container per 2^16-cell chunk, trimmed to the highest non-empty
    /// chunk ever touched.  An empty set holds no containers at all.
    chunks: Vec<Container>,
    count: usize,
}

impl CellSet {
    /// Creates an empty cell set over `shape`.  Allocates nothing: the cost
    /// of an empty set is independent of the shape.
    pub fn empty(shape: Shape) -> Self {
        CellSet {
            shape,
            chunks: Vec::new(),
            count: 0,
        }
    }

    /// Creates a cell set containing every cell of `shape`.
    pub fn full(shape: Shape) -> Self {
        let mut s = Self::empty(shape);
        s.set_all();
        s
    }

    /// Creates a cell set from an iterator of coordinates.
    ///
    /// Out-of-bounds coordinates are ignored; this mirrors the paper's
    /// semantics where a lineage result is always clipped to the array it
    /// refers to.
    pub fn from_coords<I: IntoIterator<Item = Coord>>(shape: Shape, coords: I) -> Self {
        let mut s = Self::empty(shape);
        for c in coords {
            if shape.contains(&c) {
                s.insert(&c);
            }
        }
        s
    }

    /// The shape this cell set ranges over.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of cells in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether every cell of the shape is in the set.  Saturation is what the
    /// *entire-array* query optimization checks for.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count == self.shape.num_cells()
    }

    #[inline]
    fn ensure_chunk(&mut self, ci: usize) -> &mut Container {
        if ci >= self.chunks.len() {
            self.chunks.resize_with(ci + 1, Container::new);
        }
        &mut self.chunks[ci]
    }

    /// Inserts a cell.  Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is out of bounds for the set's shape.
    #[inline]
    pub fn insert(&mut self, coord: &Coord) -> bool {
        let idx = self.shape.ravel(coord);
        self.insert_linear(idx)
    }

    /// Inserts a cell identified by its row-major linear index.
    #[inline]
    pub fn insert_linear(&mut self, idx: usize) -> bool {
        assert!(idx < self.shape.num_cells(), "linear index out of bounds");
        let ci = idx >> CHUNK_BITS;
        let lo = (idx & (CHUNK_CELLS - 1)) as u16;
        let added = self.ensure_chunk(ci).insert(lo);
        self.count += added as usize;
        added
    }

    /// Bulk-inserts a sorted (non-decreasing) slice of linear indices, as
    /// produced by the columnar scan decoder.  Returns how many cells were
    /// newly inserted.  Much cheaper than repeated [`insert_linear`]: each
    /// touched container is merged once instead of shifted per index.
    ///
    /// [`insert_linear`]: CellSet::insert_linear
    ///
    /// # Panics
    ///
    /// Panics if the slice is not sorted or an index is out of bounds.
    pub fn insert_sorted(&mut self, idxs: &[u64]) -> usize {
        let Some(&last) = idxs.last() else { return 0 };
        assert!(
            (last as usize) < self.shape.num_cells(),
            "linear index out of bounds"
        );
        debug_assert!(idxs.windows(2).all(|w| w[0] <= w[1]), "unsorted indices");
        let mut added = 0usize;
        let mut i = 0usize;
        while i < idxs.len() {
            let ci = (idxs[i] >> CHUNK_BITS) as usize;
            let hi = ((ci as u64) + 1) << CHUNK_BITS;
            let mut j = i + 1;
            while j < idxs.len() && idxs[j] < hi {
                j += 1;
            }
            added += Self::merge_group(self.ensure_chunk(ci), &idxs[i..j]);
            i = j;
        }
        self.count += added;
        added
    }

    /// Merges one chunk's worth of sorted linear indices into its container.
    fn merge_group(c: &mut Container, group: &[u64]) -> usize {
        #[inline]
        fn lo_of(x: u64) -> u16 {
            (x & (CHUNK_CELLS as u64 - 1)) as u16
        }
        match c {
            Container::Dense { words, len } => {
                let mut added = 0usize;
                for &x in group {
                    let (wi, bit) = word_bit(lo_of(x));
                    added += (words[wi] & bit == 0) as usize;
                    words[wi] |= bit;
                }
                *len += added as u32;
                added
            }
            Container::Sparse(v) => {
                let mut merged: Vec<u16> = Vec::with_capacity(v.len() + group.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < v.len() || j < group.len() {
                    let take_old = match (v.get(i), group.get(j)) {
                        (Some(&a), Some(&b)) => a <= lo_of(b),
                        (Some(_), None) => true,
                        _ => false,
                    };
                    let next = if take_old {
                        let a = v[i];
                        i += 1;
                        a
                    } else {
                        let b = lo_of(group[j]);
                        j += 1;
                        b
                    };
                    if merged.last() != Some(&next) {
                        merged.push(next);
                    }
                }
                let added = merged.len() - v.len();
                *c = Container::Sparse(merged);
                if c.len() > SPARSE_MAX {
                    c.promote_to_dense();
                }
                added
            }
            Container::Runs(r) => {
                let mut incoming: Vec<(u16, u16)> = Vec::new();
                for &x in group {
                    let lo = lo_of(x);
                    match incoming.last_mut() {
                        Some(last) if last.1 as u32 + 1 >= lo as u32 => last.1 = last.1.max(lo),
                        _ => incoming.push((lo, lo)),
                    }
                }
                let before = runs_cell_count(r);
                let merged = merge_runs(r, &incoming);
                let added = runs_cell_count(&merged) - before;
                let promote = merged.len() > RUNS_MAX;
                *c = Container::Runs(merged);
                if promote {
                    c.promote_to_dense();
                }
                added
            }
        }
    }

    /// Inserts the contiguous linear-index range `start .. start + len`.
    /// Used by the full-array fast path and the run-frame wire decoder.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the shape's cell count.
    pub fn insert_span(&mut self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = start + len; // exclusive
        assert!(end <= self.shape.num_cells(), "linear index out of bounds");
        let mut pos = start;
        while pos < end {
            let ci = pos >> CHUNK_BITS;
            let chunk_end = ((ci + 1) << CHUNK_BITS).min(end);
            let s = (pos & (CHUNK_CELLS - 1)) as u16;
            let l = ((chunk_end - 1) & (CHUNK_CELLS - 1)) as u16;
            self.count += self.ensure_chunk(ci).insert_range(s, l);
            pos = chunk_end;
        }
    }

    /// ORs a whole 64-bit word of the linear bitmap into the set.
    /// `word_idx` counts 64-cell words from linear index 0; used by the
    /// dense wire-frame decoder.  Returns how many cells were newly set.
    ///
    /// # Panics
    ///
    /// Panics if `bits` sets a cell at or beyond the shape's cell count.
    pub fn insert_word(&mut self, word_idx: usize, bits: u64) -> usize {
        if bits == 0 {
            return 0;
        }
        let top = word_idx * 64 + (63 - bits.leading_zeros() as usize);
        assert!(top < self.shape.num_cells(), "linear index out of bounds");
        let ci = word_idx / DENSE_WORDS;
        let wi = word_idx % DENSE_WORDS;
        let c = self.ensure_chunk(ci);
        if !matches!(c, Container::Dense { .. }) {
            c.promote_to_dense();
        }
        let Container::Dense { words, len } = c else {
            unreachable!()
        };
        let added = (bits & !words[wi]).count_ones() as usize;
        words[wi] |= bits;
        *len += added as u32;
        self.count += added;
        added
    }

    /// Promotes every non-empty chunk to the dense representation, turning
    /// [`contains_linear`] and [`intersect_sorted`] probes into O(1) word
    /// tests.  Scan joins call this on a clone of the query before probing
    /// it once per stored record; pair with [`optimize`] to re-compact when
    /// the probe-heavy phase is over.  Costs 8 KiB per promoted chunk, so
    /// only chunks that already hold cells are touched.
    ///
    /// [`contains_linear`]: CellSet::contains_linear
    /// [`intersect_sorted`]: CellSet::intersect_sorted
    /// [`optimize`]: CellSet::optimize
    pub fn densify(&mut self) {
        for c in &mut self.chunks {
            if c.len() > 0 && !matches!(c, Container::Dense { .. }) {
                c.promote_to_dense();
            }
        }
    }

    /// Marks every cell as present.
    pub fn set_all(&mut self) {
        let n = self.shape.num_cells();
        self.chunks.clear();
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(CHUNK_CELLS);
            self.chunks
                .push(Container::Runs(vec![(0, (take - 1) as u16)]));
            remaining -= take;
        }
        self.count = n;
    }

    /// Whether `coord` is present.
    #[inline]
    pub fn contains(&self, coord: &Coord) -> bool {
        if !self.shape.contains(coord) {
            return false;
        }
        let idx = self.shape.ravel(coord);
        self.contains_linear(idx)
    }

    /// Whether the cell at linear index `idx` is present.  Out-of-range
    /// indices are absent, never an error.
    #[inline]
    pub fn contains_linear(&self, idx: usize) -> bool {
        let ci = idx >> CHUNK_BITS;
        match self.chunks.get(ci) {
            Some(c) => c.contains((idx & (CHUNK_CELLS - 1)) as u16),
            None => false,
        }
    }

    /// Intersects a sorted (non-decreasing) slice of linear indices against
    /// the set, invoking `on_hit` for each member, in order.  Returns `true`
    /// if there was at least one hit.  This is the join's hot path: dense
    /// chunks answer with a word probe, sparse and run chunks with a linear
    /// merge over the (already sorted) scan indices.
    pub fn intersect_sorted(&self, idxs: &[u64], mut on_hit: impl FnMut(u64)) -> bool {
        let mut any = false;
        let mut i = 0usize;
        while i < idxs.len() {
            let ci = (idxs[i] >> CHUNK_BITS) as usize;
            if ci >= self.chunks.len() {
                break; // sorted: every later index lands past our last chunk
            }
            let hi = ((ci as u64) + 1) << CHUNK_BITS;
            let mut j = i + 1;
            while j < idxs.len() && idxs[j] < hi {
                j += 1;
            }
            let group = &idxs[i..j];
            match &self.chunks[ci] {
                Container::Sparse(v) if v.is_empty() => {}
                Container::Sparse(v) => {
                    // Scan records probe with a handful of indices at a time,
                    // so a linear merge would re-walk the container once per
                    // record; bisect the remaining tail per probe instead
                    // unless the group is big enough to amortise the walk.
                    let linear = group.len() * 4 >= v.len();
                    let mut k = 0usize;
                    for &x in group {
                        let lo = (x & (CHUNK_CELLS as u64 - 1)) as u16;
                        if linear {
                            while k < v.len() && v[k] < lo {
                                k += 1;
                            }
                        } else {
                            k += v[k..].partition_point(|&e| e < lo);
                        }
                        if k == v.len() {
                            break;
                        }
                        if v[k] == lo {
                            any = true;
                            on_hit(x);
                        }
                    }
                }
                Container::Runs(r) => {
                    let linear = group.len() * 4 >= r.len();
                    let mut k = 0usize;
                    for &x in group {
                        let lo = (x & (CHUNK_CELLS as u64 - 1)) as u16;
                        if linear {
                            while k < r.len() && r[k].1 < lo {
                                k += 1;
                            }
                        } else {
                            k += r[k..].partition_point(|run| run.1 < lo);
                        }
                        if k == r.len() {
                            break;
                        }
                        if r[k].0 <= lo {
                            any = true;
                            on_hit(x);
                        }
                    }
                }
                Container::Dense { words, .. } => {
                    for &x in group {
                        let (wi, bit) = word_bit((x & (CHUNK_CELLS as u64 - 1)) as u16);
                        if words[wi] & bit != 0 {
                            any = true;
                            on_hit(x);
                        }
                    }
                }
            }
            i = j;
        }
        any
    }

    /// In-place union with another cell set of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn union_with(&mut self, other: &CellSet) {
        assert_eq!(self.shape, other.shape, "cell-set shape mismatch in union");
        for (ci, oc) in other.chunks.iter().enumerate() {
            if oc.len() == 0 {
                continue;
            }
            let c = self.ensure_chunk(ci);
            let before = c.len();
            Self::union_chunk(c, oc);
            c.normalize();
            self.count += c.len() - before;
        }
    }

    /// Merges `src` into `dst` (same chunk of two sets).
    fn union_chunk(dst: &mut Container, src: &Container) {
        match (&mut *dst, src) {
            (Container::Dense { words, len }, Container::Dense { words: ow, .. }) => {
                let mut n = 0u32;
                for (a, b) in words.iter_mut().zip(ow.iter()) {
                    *a |= *b;
                    n += a.count_ones();
                }
                *len = n;
            }
            (Container::Dense { words, len }, Container::Sparse(v)) => {
                let mut added = 0u32;
                for &lo in v {
                    let (wi, bit) = word_bit(lo);
                    added += (words[wi] & bit == 0) as u32;
                    words[wi] |= bit;
                }
                *len += added;
            }
            (Container::Dense { words, len }, Container::Runs(r)) => {
                let mut added = 0u32;
                for &(s, l) in r {
                    added += fill_range(words, s, l) as u32;
                }
                *len += added;
            }
            (_, Container::Dense { .. }) => {
                dst.promote_to_dense();
                Self::union_chunk(dst, src);
            }
            (Container::Sparse(a), Container::Sparse(b)) => {
                let mut merged = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() || j < b.len() {
                    let take_a = match (a.get(i), b.get(j)) {
                        (Some(&x), Some(&y)) => x <= y,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    let next = if take_a {
                        let x = a[i];
                        i += 1;
                        x
                    } else {
                        let y = b[j];
                        j += 1;
                        y
                    };
                    if merged.last() != Some(&next) {
                        merged.push(next);
                    }
                }
                *dst = Container::Sparse(merged);
            }
            _ => {
                let merged = merge_runs(&dst.to_runs_vec(), &src.to_runs_vec());
                *dst = Container::Runs(merged);
            }
        }
    }

    /// Intersection count with another cell set of the same shape (used by
    /// tests and statistics; the hot path only needs union and membership).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn intersection_len(&self, other: &CellSet) -> usize {
        assert_eq!(self.shape, other.shape, "cell-set shape mismatch");
        self.chunks
            .iter()
            .zip(other.chunks.iter())
            .map(|(a, b)| Self::chunk_intersection(a, b))
            .sum()
    }

    fn chunk_intersection(a: &Container, b: &Container) -> usize {
        use Container::*;
        match (a, b) {
            (Dense { words: wa, .. }, Dense { words: wb, .. }) => wa
                .iter()
                .zip(wb.iter())
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum(),
            (Dense { words, .. }, Runs(r)) | (Runs(r), Dense { words, .. }) => {
                r.iter().map(|&(s, l)| range_popcount(words, s, l)).sum()
            }
            (Runs(x), Runs(y)) => {
                let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
                while i < x.len() && j < y.len() {
                    let s = x[i].0.max(y[j].0);
                    let l = x[i].1.min(y[j].1);
                    if s <= l {
                        n += (l - s) as usize + 1;
                    }
                    if x[i].1 <= y[j].1 {
                        i += 1;
                    } else {
                        j += 1;
                    }
                }
                n
            }
            // Remaining mixed cases: walk the smaller side, probe the other.
            _ => {
                let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                ChunkCursor::new(small)
                    .filter(|&lo| big.contains(lo as u16))
                    .count()
            }
        }
    }

    /// Iterates the linear indices in the set in increasing (row-major)
    /// order.
    pub fn iter_linear(&self) -> impl Iterator<Item = usize> + '_ {
        self.chunks
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| ChunkCursor::new(c).map(move |lo| (ci << CHUNK_BITS) + lo as usize))
    }

    /// Iterates over the coordinates in the set in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let shape = self.shape;
        self.iter_linear().map(move |idx| shape.unravel(idx))
    }

    /// Iterates the set as maximal `(start, len)` runs of linear indices,
    /// coalesced across chunk boundaries.  This is what the wire encoder
    /// sizes the run frame from.
    pub fn runs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut it = self
            .chunks
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| {
                let base = (ci as u64) << CHUNK_BITS;
                c.to_runs_vec()
                    .into_iter()
                    .map(move |(s, l)| (base + s as u64, l as u64 - s as u64 + 1))
            })
            .peekable();
        std::iter::from_fn(move || {
            let (s, mut l) = it.next()?;
            while let Some(&(ns, nl)) = it.peek() {
                if ns == s + l {
                    l += nl;
                    it.next();
                } else {
                    break;
                }
            }
            Some((s, l))
        })
    }

    /// Number of maximal runs (the length of [`CellSet::runs`]), without
    /// materialising them.
    pub fn run_count(&self) -> usize {
        let mut n = 0usize;
        let mut prev_end: Option<u64> = None;
        for (ci, c) in self.chunks.iter().enumerate() {
            if c.len() == 0 {
                continue;
            }
            let base = (ci as u64) << CHUNK_BITS;
            n += c.count_runs();
            // A chunk whose first cell continues the previous chunk's tail
            // run double-counted one run.
            if prev_end == Some(base) && c.contains(0) {
                n -= 1;
            }
            prev_end = if c.contains((CHUNK_CELLS - 1) as u16) {
                Some(base + CHUNK_CELLS as u64)
            } else {
                None
            };
        }
        n
    }

    /// The smallest and largest linear index present, if the set is
    /// non-empty.  The wire encoder uses this to size dense word frames.
    pub fn bounds_linear(&self) -> Option<(usize, usize)> {
        let first = self.iter_linear().next()?;
        let last = self
            .chunks
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| c.len() > 0)
            .map(|(ci, c)| {
                let hi = match c {
                    Container::Sparse(v) => *v.last().unwrap() as usize,
                    Container::Runs(r) => r.last().unwrap().1 as usize,
                    Container::Dense { words, .. } => {
                        let (wi, w) = words
                            .iter()
                            .enumerate()
                            .rev()
                            .find(|(_, w)| **w != 0)
                            .unwrap();
                        wi * 64 + 63 - w.leading_zeros() as usize
                    }
                };
                (ci << CHUNK_BITS) + hi
            })
            .unwrap();
        Some((first, last))
    }

    /// Collects the coordinates into a vector.
    pub fn to_coords(&self) -> Vec<Coord> {
        self.iter().collect()
    }

    /// Re-normalises every chunk to its smallest representation (e.g. a
    /// saturated dense chunk demotes to a single run).  Mutating operations
    /// only ever promote; call this after bulk construction if the set will
    /// be long-lived.
    pub fn optimize(&mut self) {
        for c in &mut self.chunks {
            c.normalize();
        }
        while self
            .chunks
            .last()
            .is_some_and(|c| matches!(c, Container::Sparse(v) if v.is_empty()))
        {
            self.chunks.pop();
        }
    }

    /// How many containers of each representation the set currently uses.
    pub fn repr_counts(&self) -> ReprCounts {
        let mut out = ReprCounts::default();
        for c in &self.chunks {
            match c {
                Container::Sparse(v) if v.is_empty() => {}
                Container::Sparse(_) => out.sparse += 1,
                Container::Runs(_) => out.runs += 1,
                Container::Dense { .. } => out.dense += 1,
            }
        }
        out
    }

    /// Approximate memory footprint in bytes: the sum of container payloads
    /// plus the chunk table.  Scales with content, not shape.
    pub fn size_bytes(&self) -> usize {
        self.chunks.len() * std::mem::size_of::<Container>()
            + self.chunks.iter().map(Container::size_bytes).sum::<usize>()
    }
}

impl std::fmt::Debug for CellSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSet")
            .field("shape", &self.shape)
            .field("count", &self.count)
            .field("repr", &self.repr_counts())
            .finish()
    }
}

/// Equality is semantic — two sets with the same shape and members are
/// equal regardless of which container representations they ended up in.
impl PartialEq for CellSet {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape
            && self.count == other.count
            && self.iter_linear().eq(other.iter_linear())
    }
}

impl Eq for CellSet {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let s = CellSet::empty(Shape::d2(3, 3));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.is_full());

        let f = CellSet::full(Shape::d2(3, 3));
        assert!(f.is_full());
        assert_eq!(f.len(), 9);
        assert!(f.contains(&Coord::d2(2, 2)));
    }

    #[test]
    fn insert_and_contains() {
        let mut s = CellSet::empty(Shape::d2(10, 10));
        assert!(s.insert(&Coord::d2(3, 4)));
        assert!(!s.insert(&Coord::d2(3, 4)), "double insert reports false");
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Coord::d2(3, 4)));
        assert!(!s.contains(&Coord::d2(4, 3)));
        assert!(!s.contains(&Coord::d2(99, 99)), "out of bounds is absent");
    }

    #[test]
    fn from_coords_ignores_out_of_bounds_and_dedups() {
        let s = CellSet::from_coords(
            Shape::d2(2, 2),
            vec![
                Coord::d2(0, 0),
                Coord::d2(0, 0),
                Coord::d2(1, 1),
                Coord::d2(5, 5),
            ],
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_all_handles_partial_last_chunk() {
        // 70 cells: a single partial chunk.
        let mut s = CellSet::empty(Shape::d2(7, 10));
        s.set_all();
        assert_eq!(s.len(), 70);
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 70);
    }

    #[test]
    fn set_all_spans_chunks() {
        // 512 * 2000 > 2^16: full set crosses chunk boundaries, stays runs.
        let s = CellSet::full(Shape::d2(512, 2000));
        assert_eq!(s.len(), 512 * 2000);
        assert!(s.is_full());
        assert!(s.contains_linear(512 * 2000 - 1));
        assert!(!s.contains_linear(512 * 2000));
        let mix = s.repr_counts();
        assert_eq!(mix.sparse + mix.dense, 0, "full set should be runs");
        assert_eq!(s.run_count(), 1, "full set is one coalesced run");
    }

    #[test]
    fn set_all_exact_word_boundary() {
        let mut s = CellSet::empty(Shape::d2(8, 8));
        s.set_all();
        assert_eq!(s.len(), 64);
        assert!(s.is_full());
    }

    #[test]
    fn union_counts_correctly() {
        let shape = Shape::d2(4, 4);
        let mut a = CellSet::from_coords(shape, vec![Coord::d2(0, 0), Coord::d2(1, 1)]);
        let b = CellSet::from_coords(shape, vec![Coord::d2(1, 1), Coord::d2(2, 2)]);
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(&Coord::d2(2, 2)));
    }

    #[test]
    fn intersection_len() {
        let shape = Shape::d2(4, 4);
        let a = CellSet::from_coords(shape, vec![Coord::d2(0, 0), Coord::d2(1, 1)]);
        let b = CellSet::from_coords(shape, vec![Coord::d2(1, 1), Coord::d2(2, 2)]);
        assert_eq!(a.intersection_len(&b), 1);
    }

    #[test]
    fn iter_returns_sorted_coords() {
        let shape = Shape::d2(3, 3);
        let s = CellSet::from_coords(
            shape,
            vec![Coord::d2(2, 2), Coord::d2(0, 1), Coord::d2(1, 0)],
        );
        let coords = s.to_coords();
        assert_eq!(
            coords,
            vec![Coord::d2(0, 1), Coord::d2(1, 0), Coord::d2(2, 2)]
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn union_rejects_shape_mismatch() {
        let mut a = CellSet::empty(Shape::d2(2, 2));
        let b = CellSet::empty(Shape::d2(3, 3));
        a.union_with(&b);
    }

    #[test]
    fn empty_set_costs_nothing_regardless_of_shape() {
        let s = CellSet::empty(Shape::d2(512, 2000));
        assert_eq!(s.size_bytes(), 0);
        // A full set over the same shape is a handful of runs, not 128 KB.
        let f = CellSet::full(Shape::d2(512, 2000));
        assert!(f.size_bytes() < 1024, "full set is {} B", f.size_bytes());
    }

    #[test]
    fn sparse_promotes_to_dense_at_boundary() {
        // 2 * SPARSE_MAX cells in one chunk, every other cell: stays sparse
        // until the 4097th insert, then flips dense.
        let shape = Shape::d2(256, 256); // exactly one chunk
        let mut s = CellSet::empty(shape);
        for i in 0..SPARSE_MAX {
            s.insert_linear(i * 2);
        }
        assert_eq!(
            s.repr_counts(),
            ReprCounts {
                sparse: 1,
                runs: 0,
                dense: 0
            }
        );
        s.insert_linear(SPARSE_MAX * 2);
        assert_eq!(
            s.repr_counts(),
            ReprCounts {
                sparse: 0,
                runs: 0,
                dense: 1
            }
        );
        assert_eq!(s.len(), SPARSE_MAX + 1);
        for i in 0..=SPARSE_MAX {
            assert!(s.contains_linear(i * 2));
            assert!(!s.contains_linear(i * 2 + 1));
        }
    }

    #[test]
    fn runs_promote_to_dense_at_boundary() {
        let shape = Shape::d2(256, 256);
        let mut s = CellSet::empty(shape);
        // Build RUNS_MAX disjoint 2-cell runs via spans: 0-1, 4-5, 8-9, ...
        for i in 0..RUNS_MAX {
            s.insert_span(i * 4, 2);
        }
        assert_eq!(
            s.repr_counts(),
            ReprCounts {
                sparse: 0,
                runs: 1,
                dense: 0
            }
        );
        // One more disjoint run tips it over.
        s.insert_span(RUNS_MAX * 4, 2);
        assert_eq!(
            s.repr_counts(),
            ReprCounts {
                sparse: 0,
                runs: 0,
                dense: 1
            }
        );
        assert_eq!(s.len(), (RUNS_MAX + 1) * 2);
        assert!(s.contains_linear(8));
        assert!(!s.contains_linear(2));
    }

    #[test]
    fn optimize_demotes_saturated_dense_to_runs() {
        let shape = Shape::d2(256, 256);
        let mut s = CellSet::empty(shape);
        // Insert one-by-one so the chunk promotes to dense on the way up.
        for i in 0..shape.num_cells() {
            s.insert_linear(i);
        }
        assert_eq!(
            s.repr_counts(),
            ReprCounts {
                sparse: 0,
                runs: 0,
                dense: 1
            }
        );
        assert!(s.is_full());
        s.optimize();
        assert_eq!(
            s.repr_counts(),
            ReprCounts {
                sparse: 0,
                runs: 1,
                dense: 0
            }
        );
        assert!(s.is_full());
        assert_eq!(s.iter_linear().count(), shape.num_cells());
    }

    #[test]
    fn insert_sorted_matches_per_index_inserts() {
        let shape = Shape::d2(300, 300); // spans two chunks
        let idxs: Vec<u64> = (0..shape.num_cells() as u64)
            .filter(|i| i % 7 == 0 || (30_000..30_400).contains(i))
            .collect();
        let mut bulk = CellSet::empty(shape);
        let added = bulk.insert_sorted(&idxs);
        let mut one = CellSet::empty(shape);
        for &i in &idxs {
            one.insert_linear(i as usize);
        }
        assert_eq!(added, idxs.len());
        assert_eq!(bulk, one);
        assert_eq!(bulk.insert_sorted(&idxs), 0, "re-insert adds nothing");
    }

    #[test]
    fn intersect_sorted_reports_hits_in_order() {
        let shape = Shape::d2(300, 300);
        let set = CellSet::from_coords(
            shape,
            (0..300).map(|i| Coord::d2(i, i)), // the diagonal
        );
        let probe: Vec<u64> = (0..shape.num_cells() as u64).step_by(301).collect();
        let mut hits = Vec::new();
        let any = set.intersect_sorted(&probe, |x| hits.push(x));
        assert!(any);
        // Diagonal cells are exactly the multiples of 301.
        assert_eq!(hits, probe);
        let miss: Vec<u64> = vec![1, 302, 603];
        assert!(!set.intersect_sorted(&miss, |_| panic!("no hits expected")));
    }

    #[test]
    fn runs_iterator_coalesces_across_chunks() {
        let shape = Shape::d2(300, 300);
        let mut s = CellSet::empty(shape);
        // A span straddling the first chunk boundary plus a lone cell.
        s.insert_span(65_530, 12);
        s.insert_linear(70_000);
        let runs: Vec<(u64, u64)> = s.runs().collect();
        assert_eq!(runs, vec![(65_530, 12), (70_000, 1)]);
        assert_eq!(s.run_count(), 2);
    }

    #[test]
    fn insert_word_matches_bit_inserts() {
        let shape = Shape::d2(300, 300);
        let mut a = CellSet::empty(shape);
        a.insert_word(3, 0xF0F0_F0F0_F0F0_F0F0);
        a.insert_word(1024, 1);
        let mut b = CellSet::empty(shape);
        for bit in 0..64 {
            if 0xF0F0_F0F0_F0F0_F0F0u64 & (1 << bit) != 0 {
                b.insert_linear(3 * 64 + bit);
            }
        }
        b.insert_linear(1024 * 64);
        a.optimize();
        assert_eq!(a, b);
    }

    #[test]
    fn equality_is_representation_independent() {
        let shape = Shape::d2(256, 256);
        let mut dense_path = CellSet::empty(shape);
        for i in 0..5000 {
            dense_path.insert_linear(i); // promotes to dense at 4097
        }
        let mut run_path = CellSet::empty(shape);
        run_path.insert_span(0, 5000);
        assert_eq!(dense_path.repr_counts().dense, 1);
        assert_eq!(run_path.repr_counts().runs, 1);
        assert_eq!(dense_path, run_path);
    }
}
