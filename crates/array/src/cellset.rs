//! Bitmap sets of cells over a fixed shape.
//!
//! The SubZero query executor represents the intermediate result of every
//! lineage-query step as "an in-memory boolean array with the same dimensions
//! as the input (backward query) or output (forward query) array" (§VI-C of
//! the paper).  [`CellSet`] is that structure: a compact bitmap keyed by the
//! row-major linear index of each cell, with cheap union, membership testing,
//! de-duplication by construction, and an inexpensive saturation check used by
//! the *entire-array* optimization.

use crate::{Coord, Shape};

/// A set of cells of an array of known [`Shape`], stored as a bitmap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellSet {
    shape: Shape,
    words: Vec<u64>,
    count: usize,
}

impl CellSet {
    /// Creates an empty cell set over `shape`.
    pub fn empty(shape: Shape) -> Self {
        let nwords = shape.num_cells().div_ceil(64);
        CellSet {
            shape,
            words: vec![0; nwords],
            count: 0,
        }
    }

    /// Creates a cell set containing every cell of `shape`.
    pub fn full(shape: Shape) -> Self {
        let mut s = Self::empty(shape);
        s.set_all();
        s
    }

    /// Creates a cell set from an iterator of coordinates.
    ///
    /// Out-of-bounds coordinates are ignored; this mirrors the paper's
    /// semantics where a lineage result is always clipped to the array it
    /// refers to.
    pub fn from_coords<I: IntoIterator<Item = Coord>>(shape: Shape, coords: I) -> Self {
        let mut s = Self::empty(shape);
        for c in coords {
            if shape.contains(&c) {
                s.insert(&c);
            }
        }
        s
    }

    /// The shape this cell set ranges over.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of cells in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether every cell of the shape is in the set.  Saturation is what the
    /// *entire-array* query optimization checks for.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.count == self.shape.num_cells()
    }

    /// Inserts a cell.  Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is out of bounds for the set's shape.
    #[inline]
    pub fn insert(&mut self, coord: &Coord) -> bool {
        let idx = self.shape.ravel(coord);
        self.insert_linear(idx)
    }

    /// Inserts a cell identified by its row-major linear index.
    #[inline]
    pub fn insert_linear(&mut self, idx: usize) -> bool {
        assert!(idx < self.shape.num_cells(), "linear index out of bounds");
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Marks every cell as present.
    pub fn set_all(&mut self) {
        let n = self.shape.num_cells();
        for w in self.words.iter_mut() {
            *w = u64::MAX;
        }
        // Clear the bits past the end of the array in the last word.
        let tail = n % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        self.count = n;
    }

    /// Whether `coord` is present.
    #[inline]
    pub fn contains(&self, coord: &Coord) -> bool {
        if !self.shape.contains(coord) {
            return false;
        }
        let idx = self.shape.ravel(coord);
        self.contains_linear(idx)
    }

    /// Whether the cell at linear index `idx` is present.
    #[inline]
    pub fn contains_linear(&self, idx: usize) -> bool {
        let word = idx / 64;
        let bit = 1u64 << (idx % 64);
        self.words.get(word).is_some_and(|w| w & bit != 0)
    }

    /// In-place union with another cell set of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn union_with(&mut self, other: &CellSet) {
        assert_eq!(self.shape, other.shape, "cell-set shape mismatch in union");
        let mut count = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
            count += a.count_ones() as usize;
        }
        self.count = count;
    }

    /// Intersection count with another cell set of the same shape (used by
    /// tests and statistics; the hot path only needs union and membership).
    pub fn intersection_len(&self, other: &CellSet) -> usize {
        assert_eq!(self.shape, other.shape, "cell-set shape mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the coordinates in the set in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let shape = self.shape;
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
            .map(move |idx| shape.unravel(idx))
        })
    }

    /// Collects the coordinates into a vector.
    pub fn to_coords(&self) -> Vec<Coord> {
        self.iter().collect()
    }

    /// Approximate memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let s = CellSet::empty(Shape::d2(3, 3));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.is_full());

        let f = CellSet::full(Shape::d2(3, 3));
        assert!(f.is_full());
        assert_eq!(f.len(), 9);
        assert!(f.contains(&Coord::d2(2, 2)));
    }

    #[test]
    fn insert_and_contains() {
        let mut s = CellSet::empty(Shape::d2(10, 10));
        assert!(s.insert(&Coord::d2(3, 4)));
        assert!(!s.insert(&Coord::d2(3, 4)), "double insert reports false");
        assert_eq!(s.len(), 1);
        assert!(s.contains(&Coord::d2(3, 4)));
        assert!(!s.contains(&Coord::d2(4, 3)));
        assert!(!s.contains(&Coord::d2(99, 99)), "out of bounds is absent");
    }

    #[test]
    fn from_coords_ignores_out_of_bounds_and_dedups() {
        let s = CellSet::from_coords(
            Shape::d2(2, 2),
            vec![
                Coord::d2(0, 0),
                Coord::d2(0, 0),
                Coord::d2(1, 1),
                Coord::d2(5, 5),
            ],
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_all_handles_partial_last_word() {
        // 70 cells spans two words; the second word must only have 6 bits set.
        let mut s = CellSet::empty(Shape::d2(7, 10));
        s.set_all();
        assert_eq!(s.len(), 70);
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 70);
    }

    #[test]
    fn set_all_exact_word_boundary() {
        let mut s = CellSet::empty(Shape::d2(8, 8));
        s.set_all();
        assert_eq!(s.len(), 64);
        assert!(s.is_full());
    }

    #[test]
    fn union_counts_correctly() {
        let shape = Shape::d2(4, 4);
        let mut a = CellSet::from_coords(shape, vec![Coord::d2(0, 0), Coord::d2(1, 1)]);
        let b = CellSet::from_coords(shape, vec![Coord::d2(1, 1), Coord::d2(2, 2)]);
        a.union_with(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(&Coord::d2(2, 2)));
    }

    #[test]
    fn intersection_len() {
        let shape = Shape::d2(4, 4);
        let a = CellSet::from_coords(shape, vec![Coord::d2(0, 0), Coord::d2(1, 1)]);
        let b = CellSet::from_coords(shape, vec![Coord::d2(1, 1), Coord::d2(2, 2)]);
        assert_eq!(a.intersection_len(&b), 1);
    }

    #[test]
    fn iter_returns_sorted_coords() {
        let shape = Shape::d2(3, 3);
        let s = CellSet::from_coords(
            shape,
            vec![Coord::d2(2, 2), Coord::d2(0, 1), Coord::d2(1, 0)],
        );
        let coords = s.to_coords();
        assert_eq!(
            coords,
            vec![Coord::d2(0, 1), Coord::d2(1, 0), Coord::d2(2, 2)]
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn union_rejects_shape_mismatch() {
        let mut a = CellSet::empty(Shape::d2(2, 2));
        let b = CellSet::empty(Shape::d2(3, 3));
        a.union_with(&b);
    }

    #[test]
    fn size_bytes_scales_with_shape() {
        let s = CellSet::empty(Shape::d2(512, 2000));
        assert_eq!(s.size_bytes(), (512 * 2000usize).div_ceil(64) * 8);
    }
}
