//! Dense multi-dimensional arrays of `f64` cells.

use crate::{ArrayError, Coord, Shape};

/// A dense multi-dimensional array with a single `f64` attribute per cell.
///
/// This mirrors the portion of the SciDB data model that SubZero relies on: a
/// combination of values along each dimension (a [`Coord`]) uniquely
/// identifies a cell, and operators consume whole arrays and produce a single
/// output array.
///
/// ```
/// use subzero_array::{Array, Coord, Shape};
///
/// let mut a = Array::zeros(Shape::d2(2, 3));
/// a.set(&Coord::d2(1, 2), 42.0);
/// assert_eq!(a.get(&Coord::d2(1, 2)), 42.0);
/// assert_eq!(a.get(&Coord::d2(0, 0)), 0.0);
/// assert_eq!(a.shape().num_cells(), 6);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Array {
    shape: Shape,
    data: Vec<f64>,
}

impl Array {
    /// Creates an array of the given shape filled with `value`.
    pub fn filled(shape: Shape, value: f64) -> Self {
        Array {
            shape,
            data: vec![value; shape.num_cells()],
        }
    }

    /// Creates a zero-filled array.
    pub fn zeros(shape: Shape) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates an array from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::ShapeMismatch`] if `data.len()` does not equal
    /// `shape.num_cells()`.
    pub fn from_vec(shape: Shape, data: Vec<f64>) -> Result<Self, ArrayError> {
        if data.len() != shape.num_cells() {
            return Err(ArrayError::ShapeMismatch {
                context: format!(
                    "data length {} does not match shape {} ({} cells)",
                    data.len(),
                    shape,
                    shape.num_cells()
                ),
            });
        }
        Ok(Array { shape, data })
    }

    /// Creates a 2-D array from nested row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "from_rows requires at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "from_rows requires equal-length rows"
        );
        let shape = Shape::d2(rows.len() as u32, cols as u32);
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Array { shape, data }
    }

    /// Creates an array whose cell values are produced by `f(coord)`.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&Coord) -> f64) -> Self {
        let mut data = Vec::with_capacity(shape.num_cells());
        for c in shape.iter() {
            data.push(f(&c));
        }
        Array { shape, data }
    }

    /// The shape of this array.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reads the cell at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is out of bounds.
    #[inline]
    pub fn get(&self, coord: &Coord) -> f64 {
        self.data[self.shape.ravel(coord)]
    }

    /// Reads the cell at `coord`, returning an error for out-of-bounds access.
    pub fn try_get(&self, coord: &Coord) -> Result<f64, ArrayError> {
        if !self.shape.contains(coord) {
            return Err(ArrayError::OutOfBounds {
                coord: *coord,
                shape: self.shape,
            });
        }
        Ok(self.data[self.shape.ravel(coord)])
    }

    /// Reads the cell at linear index `idx`.
    #[inline]
    pub fn get_linear(&self, idx: usize) -> f64 {
        self.data[idx]
    }

    /// Writes `value` into the cell at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is out of bounds.
    #[inline]
    pub fn set(&mut self, coord: &Coord, value: f64) {
        let idx = self.shape.ravel(coord);
        self.data[idx] = value;
    }

    /// Writes `value` into the cell at linear index `idx`.
    #[inline]
    pub fn set_linear(&mut self, idx: usize, value: f64) {
        self.data[idx] = value;
    }

    /// Iterates over `(coord, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, f64)> + '_ {
        self.shape.iter().zip(self.data.iter().copied())
    }

    /// Applies `f` to every cell value, producing a new array of the same
    /// shape.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Array {
        Array {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two arrays of identical shape cell-by-cell.
    ///
    /// # Errors
    ///
    /// Returns [`ArrayError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(
        &self,
        other: &Array,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Array, ArrayError> {
        if self.shape != other.shape {
            return Err(ArrayError::ShapeMismatch {
                context: format!(
                    "zip_with requires equal shapes, got {} and {}",
                    self.shape, other.shape
                ),
            });
        }
        Ok(Array {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Sum of all cell values.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all cell values.
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Maximum cell value (`NaN`s are ignored; returns `f64::NEG_INFINITY`
    /// only if every cell is `NaN`).
    pub fn max(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum cell value (`NaN`s are ignored).
    pub fn min(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::INFINITY, f64::min)
    }

    /// Population standard deviation of all cell values.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .data
            .iter()
            .map(|&v| {
                let d = v - mean;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        var.sqrt()
    }

    /// Number of cells whose value satisfies `pred`.
    pub fn count_where(&self, pred: impl Fn(f64) -> bool) -> usize {
        self.data.iter().filter(|&&v| pred(v)).count()
    }

    /// Coordinates of cells whose value satisfies `pred`.
    pub fn coords_where(&self, pred: impl Fn(f64) -> bool) -> Vec<Coord> {
        self.iter()
            .filter(|(_, v)| pred(*v))
            .map(|(c, _)| c)
            .collect()
    }

    /// Approximate in-memory size of the array payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Extracts the rectangular sub-array with corners `lo` (inclusive) and
    /// `hi` (inclusive).
    ///
    /// # Errors
    ///
    /// Returns an error if the corners are out of bounds or inverted.
    pub fn slice(&self, lo: &Coord, hi: &Coord) -> Result<Array, ArrayError> {
        if !self.shape.contains(lo) {
            return Err(ArrayError::OutOfBounds {
                coord: *lo,
                shape: self.shape,
            });
        }
        if !self.shape.contains(hi) {
            return Err(ArrayError::OutOfBounds {
                coord: *hi,
                shape: self.shape,
            });
        }
        if lo
            .as_slice()
            .iter()
            .zip(hi.as_slice())
            .any(|(&l, &h)| l > h)
        {
            return Err(ArrayError::ShapeMismatch {
                context: format!("slice corners inverted: lo={lo} hi={hi}"),
            });
        }
        let dims: Vec<u32> = lo
            .as_slice()
            .iter()
            .zip(hi.as_slice())
            .map(|(&l, &h)| h - l + 1)
            .collect();
        let out_shape = Shape::new(&dims);
        let mut out = Array::zeros(out_shape);
        for oc in out_shape.iter() {
            let src: Vec<u32> = oc
                .as_slice()
                .iter()
                .zip(lo.as_slice())
                .map(|(&o, &l)| o + l)
                .collect();
            let v = self.get(&Coord::new(&src));
            out.set(&oc, v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let a = Array::zeros(Shape::d2(3, 3));
        assert_eq!(a.sum(), 0.0);
        let b = Array::filled(Shape::d2(2, 2), 1.5);
        assert_eq!(b.sum(), 6.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Array::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]).is_ok());
        assert!(Array::from_vec(Shape::d2(2, 2), vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_layout() {
        let a = Array::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.get(&Coord::d2(0, 1)), 2.0);
        assert_eq!(a.get(&Coord::d2(1, 0)), 3.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn from_rows_rejects_ragged() {
        let _ = Array::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn from_fn_uses_coords() {
        let a = Array::from_fn(Shape::d2(2, 3), |c| (c.get(0) * 10 + c.get(1)) as f64);
        assert_eq!(a.get(&Coord::d2(1, 2)), 12.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = Array::zeros(Shape::d2(4, 4));
        a.set(&Coord::d2(2, 3), 7.0);
        assert_eq!(a.get(&Coord::d2(2, 3)), 7.0);
        assert_eq!(a.get_linear(a.shape().ravel(&Coord::d2(2, 3))), 7.0);
    }

    #[test]
    fn try_get_out_of_bounds() {
        let a = Array::zeros(Shape::d2(2, 2));
        assert!(matches!(
            a.try_get(&Coord::d2(5, 0)),
            Err(ArrayError::OutOfBounds { .. })
        ));
        assert_eq!(a.try_get(&Coord::d2(1, 1)).unwrap(), 0.0);
    }

    #[test]
    fn map_and_zip_with() {
        let a = Array::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = a.map(|v| v * 2.0);
        assert_eq!(b.get(&Coord::d2(1, 1)), 8.0);
        let c = a.zip_with(&b, |x, y| y - x).unwrap();
        assert_eq!(c.get(&Coord::d2(1, 0)), 3.0);
        let bad = Array::zeros(Shape::d2(3, 3));
        assert!(a.zip_with(&bad, |x, _| x).is_err());
    }

    #[test]
    fn statistics() {
        let a = Array::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert!((a.std_dev() - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn count_and_coords_where() {
        let a = Array::from_rows(&[vec![0.0, 5.0], vec![6.0, 0.0]]);
        assert_eq!(a.count_where(|v| v > 1.0), 2);
        assert_eq!(
            a.coords_where(|v| v > 1.0),
            vec![Coord::d2(0, 1), Coord::d2(1, 0)]
        );
    }

    #[test]
    fn slice_extracts_window() {
        let a = Array::from_fn(Shape::d2(4, 4), |c| (c.get(0) * 4 + c.get(1)) as f64);
        let s = a.slice(&Coord::d2(1, 1), &Coord::d2(2, 3)).unwrap();
        assert_eq!(s.shape(), Shape::d2(2, 3));
        assert_eq!(s.get(&Coord::d2(0, 0)), 5.0);
        assert_eq!(s.get(&Coord::d2(1, 2)), 11.0);
        assert!(a.slice(&Coord::d2(2, 2), &Coord::d2(1, 1)).is_err());
        assert!(a.slice(&Coord::d2(0, 0), &Coord::d2(9, 9)).is_err());
    }

    #[test]
    fn size_bytes() {
        let a = Array::zeros(Shape::d2(10, 10));
        assert_eq!(a.size_bytes(), 800);
    }

    #[test]
    fn iter_matches_shape_order() {
        let a = Array::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let collected: Vec<(Coord, f64)> = a.iter().collect();
        assert_eq!(collected[0], (Coord::d2(0, 0), 1.0));
        assert_eq!(collected[3], (Coord::d2(1, 1), 4.0));
    }
}
