//! No-overwrite versioned array storage.
//!
//! SciDB — and therefore the SubZero prototype — is "no overwrite": the
//! output of every operator is stored persistently, and every update to a
//! named object creates a new version.  This property is what makes
//! *black-box lineage* free: re-running any operator only requires looking up
//! the input array versions it consumed.
//!
//! [`VersionedStore`] keeps every version of every named array (as
//! reference-counted immutable arrays) and hands out [`VersionId`]s that the
//! workflow executor records per operator invocation.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{Array, ArrayError};

/// A reference-counted, immutable array as stored by the versioned store.
pub type ArrayRef = Arc<Array>;

/// Identifies one version of one named array.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionId(pub u64);

/// A no-overwrite store of named, versioned arrays.
///
/// ```
/// use subzero_array::{Array, Shape, VersionedStore};
///
/// let mut store = VersionedStore::new();
/// let v1 = store.put("image", Array::zeros(Shape::d2(2, 2)));
/// let v2 = store.put("image", Array::filled(Shape::d2(2, 2), 1.0));
/// assert_ne!(v1, v2);
/// assert_eq!(store.get_version(v1).unwrap().sum(), 0.0);
/// assert_eq!(store.latest("image").unwrap().sum(), 4.0);
/// ```
#[derive(Default, Debug)]
pub struct VersionedStore {
    next_version: u64,
    /// All versions ever written, addressable by id.
    versions: HashMap<VersionId, ArrayRef>,
    /// Per-name version history, oldest first.
    by_name: HashMap<String, Vec<VersionId>>,
    /// Total bytes of array payload stored.
    bytes_stored: usize,
}

impl VersionedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id that the next call to [`put`](Self::put) will assign.  Used by
    /// the workflow executor to write black-box (write-ahead) records that
    /// reference the output version before the array data is stored.
    pub fn next_version_id(&self) -> VersionId {
        VersionId(self.next_version)
    }

    /// Stores a new version of `name`, returning its [`VersionId`].
    ///
    /// Existing versions are never modified or dropped ("no overwrite").
    pub fn put(&mut self, name: &str, array: Array) -> VersionId {
        self.put_ref(name, Arc::new(array))
    }

    /// Stores an already reference-counted array as a new version of `name`.
    pub fn put_ref(&mut self, name: &str, array: ArrayRef) -> VersionId {
        let id = VersionId(self.next_version);
        self.next_version += 1;
        self.bytes_stored += array.size_bytes();
        self.versions.insert(id, array);
        self.by_name.entry(name.to_string()).or_default().push(id);
        id
    }

    /// Fetches a specific version.
    pub fn get_version(&self, id: VersionId) -> Result<ArrayRef, ArrayError> {
        self.versions
            .get(&id)
            .cloned()
            .ok_or_else(|| ArrayError::NotFound {
                name: format!("version {}", id.0),
                version: Some(id.0),
            })
    }

    /// Fetches the most recent version of `name`.
    pub fn latest(&self, name: &str) -> Result<ArrayRef, ArrayError> {
        let id = self.latest_version(name)?;
        self.get_version(id)
    }

    /// The id of the most recent version of `name`.
    pub fn latest_version(&self, name: &str) -> Result<VersionId, ArrayError> {
        self.by_name
            .get(name)
            .and_then(|v| v.last().copied())
            .ok_or_else(|| ArrayError::NotFound {
                name: name.to_string(),
                version: None,
            })
    }

    /// All version ids recorded for `name`, oldest first.
    pub fn versions_of(&self, name: &str) -> &[VersionId] {
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Names of all arrays that have at least one version.
    pub fn names(&self) -> Vec<&str> {
        self.by_name.keys().map(|s| s.as_str()).collect()
    }

    /// Number of versions stored across all names.
    pub fn num_versions(&self) -> usize {
        self.versions.len()
    }

    /// Total bytes of array payload held by the store.  The paper reports the
    /// cost of "storing the intermediate and final results" relative to the
    /// inputs (≈11.5× for the astronomy workflow); this counter is how the
    /// harness measures that.
    pub fn bytes_stored(&self) -> usize {
        self.bytes_stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn put_creates_monotonic_versions() {
        let mut s = VersionedStore::new();
        let a = s.put("a", Array::zeros(Shape::d1(4)));
        let b = s.put("a", Array::zeros(Shape::d1(4)));
        let c = s.put("b", Array::zeros(Shape::d1(4)));
        assert!(a < b && b < c);
        assert_eq!(s.num_versions(), 3);
        assert_eq!(s.versions_of("a"), &[a, b]);
        assert_eq!(s.versions_of("b"), &[c]);
        assert_eq!(s.versions_of("missing"), &[] as &[VersionId]);
    }

    #[test]
    fn old_versions_survive_updates() {
        let mut s = VersionedStore::new();
        let v1 = s.put("x", Array::filled(Shape::d1(2), 1.0));
        let _v2 = s.put("x", Array::filled(Shape::d1(2), 2.0));
        assert_eq!(s.get_version(v1).unwrap().sum(), 2.0);
        assert_eq!(s.latest("x").unwrap().sum(), 4.0);
    }

    #[test]
    fn missing_lookups_error() {
        let s = VersionedStore::new();
        assert!(matches!(s.latest("nope"), Err(ArrayError::NotFound { .. })));
        assert!(s.get_version(VersionId(42)).is_err());
    }

    #[test]
    fn bytes_stored_accumulates() {
        let mut s = VersionedStore::new();
        s.put("a", Array::zeros(Shape::d2(10, 10)));
        s.put("b", Array::zeros(Shape::d2(10, 10)));
        assert_eq!(s.bytes_stored(), 2 * 100 * 8);
    }

    #[test]
    fn names_lists_arrays() {
        let mut s = VersionedStore::new();
        s.put("a", Array::zeros(Shape::d1(1)));
        s.put("b", Array::zeros(Shape::d1(1)));
        let mut names = s.names();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn put_ref_shares_allocation() {
        let mut s = VersionedStore::new();
        let arr = Arc::new(Array::zeros(Shape::d1(8)));
        let v = s.put_ref("shared", Arc::clone(&arr));
        assert!(Arc::ptr_eq(&arr, &s.get_version(v).unwrap()));
    }
}
