//! Axis-aligned bounding boxes over cell coordinates.
//!
//! Bounding boxes appear in two places in SubZero: the R-tree that indexes
//! the hash keys of *Many*-encoded region pairs (so a query region can find
//! the hash entries that intersect it), and the bounding-box predicates the
//! paper discusses for restricted operator re-execution.

use crate::coord::{Coord, MAX_NDIM};

/// An axis-aligned, inclusive bounding box over coordinates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BoundingBox {
    ndim: u8,
    lo: [u32; MAX_NDIM],
    hi: [u32; MAX_NDIM],
}

impl BoundingBox {
    /// The box covering exactly one cell.
    pub fn point(c: &Coord) -> Self {
        let mut lo = [0u32; MAX_NDIM];
        let mut hi = [0u32; MAX_NDIM];
        lo[..c.ndim()].copy_from_slice(c.as_slice());
        hi[..c.ndim()].copy_from_slice(c.as_slice());
        BoundingBox {
            ndim: c.ndim() as u8,
            lo,
            hi,
        }
    }

    /// Builds a box from explicit inclusive corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners have different dimensionality or are inverted.
    pub fn new(lo: &Coord, hi: &Coord) -> Self {
        assert_eq!(lo.ndim(), hi.ndim(), "corner dimensionality mismatch");
        assert!(
            lo.as_slice()
                .iter()
                .zip(hi.as_slice())
                .all(|(&l, &h)| l <= h),
            "bounding-box corners inverted: lo={lo} hi={hi}"
        );
        let mut b = BoundingBox::point(lo);
        b.hi[..hi.ndim()].copy_from_slice(hi.as_slice());
        b
    }

    /// The smallest box containing every coordinate in `coords`.
    ///
    /// Returns `None` for an empty input.
    pub fn enclosing(coords: &[Coord]) -> Option<Self> {
        let first = coords.first()?;
        let mut b = BoundingBox::point(first);
        for c in &coords[1..] {
            b.expand(c);
        }
        Some(b)
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim as usize
    }

    /// Inclusive lower corner.
    pub fn lo(&self) -> Coord {
        Coord::new(&self.lo[..self.ndim()])
    }

    /// Inclusive upper corner.
    pub fn hi(&self) -> Coord {
        Coord::new(&self.hi[..self.ndim()])
    }

    /// Expands the box (in place) so it contains `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` has a different dimensionality.
    pub fn expand(&mut self, c: &Coord) {
        assert_eq!(c.ndim(), self.ndim(), "dimensionality mismatch");
        for d in 0..self.ndim() {
            self.lo[d] = self.lo[d].min(c.get(d));
            self.hi[d] = self.hi[d].max(c.get(d));
        }
    }

    /// Expands the box (in place) so it contains all of `other`.
    pub fn merge(&mut self, other: &BoundingBox) {
        assert_eq!(other.ndim, self.ndim, "dimensionality mismatch");
        for d in 0..self.ndim() {
            self.lo[d] = self.lo[d].min(other.lo[d]);
            self.hi[d] = self.hi[d].max(other.hi[d]);
        }
    }

    /// The merged box, without mutating either input.
    pub fn merged(&self, other: &BoundingBox) -> BoundingBox {
        let mut b = *self;
        b.merge(other);
        b
    }

    /// Whether `c` lies inside the box.
    pub fn contains(&self, c: &Coord) -> bool {
        c.ndim() == self.ndim()
            && (0..self.ndim()).all(|d| self.lo[d] <= c.get(d) && c.get(d) <= self.hi[d])
    }

    /// Whether two boxes overlap (share at least one cell).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.ndim == other.ndim
            && (0..self.ndim()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// Number of cells covered by the box.
    pub fn area(&self) -> u64 {
        (0..self.ndim())
            .map(|d| (self.hi[d] - self.lo[d] + 1) as u64)
            .product()
    }

    /// Growth in area that merging `other` into this box would cause.
    pub fn enlargement(&self, other: &BoundingBox) -> u64 {
        self.merged(other).area() - self.area()
    }

    /// Margin (half-perimeter generalisation): sum of side lengths.
    pub fn margin(&self) -> u64 {
        (0..self.ndim())
            .map(|d| (self.hi[d] - self.lo[d] + 1) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_box() {
        let b = BoundingBox::point(&Coord::d2(3, 4));
        assert_eq!(b.lo(), Coord::d2(3, 4));
        assert_eq!(b.hi(), Coord::d2(3, 4));
        assert_eq!(b.area(), 1);
        assert!(b.contains(&Coord::d2(3, 4)));
        assert!(!b.contains(&Coord::d2(3, 5)));
    }

    #[test]
    fn new_validates_corners() {
        let b = BoundingBox::new(&Coord::d2(1, 1), &Coord::d2(3, 4));
        assert_eq!(b.area(), 12);
        assert_eq!(b.margin(), 3 + 4);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn new_rejects_inverted() {
        let _ = BoundingBox::new(&Coord::d2(3, 3), &Coord::d2(1, 1));
    }

    #[test]
    fn enclosing_covers_all() {
        let coords = vec![Coord::d2(5, 5), Coord::d2(2, 8), Coord::d2(7, 3)];
        let b = BoundingBox::enclosing(&coords).unwrap();
        assert_eq!(b.lo(), Coord::d2(2, 3));
        assert_eq!(b.hi(), Coord::d2(7, 8));
        for c in &coords {
            assert!(b.contains(c));
        }
        assert!(BoundingBox::enclosing(&[]).is_none());
    }

    #[test]
    fn expand_and_merge() {
        let mut b = BoundingBox::point(&Coord::d2(5, 5));
        b.expand(&Coord::d2(2, 9));
        assert_eq!(b.lo(), Coord::d2(2, 5));
        assert_eq!(b.hi(), Coord::d2(5, 9));

        let other = BoundingBox::point(&Coord::d2(10, 0));
        let merged = b.merged(&other);
        assert!(merged.contains(&Coord::d2(10, 0)));
        assert!(merged.contains(&Coord::d2(5, 5)));
        assert_eq!(b.enlargement(&other), merged.area() - b.area());
    }

    #[test]
    fn intersection() {
        let a = BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(4, 4));
        let b = BoundingBox::new(&Coord::d2(4, 4), &Coord::d2(8, 8));
        let c = BoundingBox::new(&Coord::d2(5, 5), &Coord::d2(8, 8));
        assert!(a.intersects(&b), "shared corner cell intersects");
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
    }

    #[test]
    fn area_1d() {
        let b = BoundingBox::new(&Coord::d1(2), &Coord::d1(9));
        assert_eq!(b.area(), 8);
    }
}
