//! Array shapes (extents) and coordinate linearisation.

use std::fmt;

use crate::coord::{Coord, MAX_NDIM};

/// The extents of a multi-dimensional array: one positive length per
/// dimension.
///
/// A `Shape` provides the mapping between a [`Coord`] and the dense linear
/// index used by [`Array`](crate::Array) storage and by the bit-packed
/// coordinate encodings of the lineage system ([`ravel`](Shape::ravel) /
/// [`unravel`](Shape::unravel)).
///
/// ```
/// use subzero_array::{Coord, Shape};
///
/// let s = Shape::d2(4, 6);
/// assert_eq!(s.num_cells(), 24);
/// let c = Coord::d2(2, 3);
/// let idx = s.ravel(&c);
/// assert_eq!(idx, 2 * 6 + 3);
/// assert_eq!(s.unravel(idx), c);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    ndim: u8,
    dims: [u32; MAX_NDIM],
}

impl Shape {
    /// Creates a shape from per-dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, has more than [`MAX_NDIM`] entries, or
    /// contains a zero extent.
    pub fn new(dims: &[u32]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_NDIM,
            "shape must have between 1 and {MAX_NDIM} dimensions, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape extents must be positive, got {dims:?}"
        );
        let mut buf = [0u32; MAX_NDIM];
        buf[..dims.len()].copy_from_slice(dims);
        Shape {
            ndim: dims.len() as u8,
            dims: buf,
        }
    }

    /// Creates a 1-dimensional shape.
    pub fn d1(n: u32) -> Self {
        Shape::new(&[n])
    }

    /// Creates a 2-dimensional shape (`rows`, `cols`).
    pub fn d2(rows: u32, cols: u32) -> Self {
        Shape::new(&[rows, cols])
    }

    /// Creates a 3-dimensional shape.
    pub fn d3(a: u32, b: u32, c: u32) -> Self {
        Shape::new(&[a, b, c])
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim as usize
    }

    /// Extents as a slice of length [`Self::ndim`].
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims[..self.ndim as usize]
    }

    /// Extent along dimension `dim`.
    #[inline]
    pub fn dim(&self, dim: usize) -> u32 {
        assert!(dim < self.ndim as usize, "dimension {dim} out of range");
        self.dims[dim]
    }

    /// Number of rows (dimension 0).
    #[inline]
    pub fn rows(&self) -> u32 {
        self.dim(0)
    }

    /// Number of columns (dimension 1) of a 2-D shape.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.dim(1)
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.dims().iter().map(|&d| d as usize).product()
    }

    /// Whether `coord` lies inside this shape (same dimensionality and every
    /// component strictly less than the corresponding extent).
    #[inline]
    pub fn contains(&self, coord: &Coord) -> bool {
        coord.ndim() == self.ndim()
            && coord
                .as_slice()
                .iter()
                .zip(self.dims())
                .all(|(&c, &d)| c < d)
    }

    /// Converts a coordinate into its row-major linear index.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is not contained in this shape.
    #[inline]
    pub fn ravel(&self, coord: &Coord) -> usize {
        assert!(
            self.contains(coord),
            "coordinate {coord} out of bounds for shape {self}"
        );
        let mut idx = 0usize;
        for (d, (&c, &len)) in coord.as_slice().iter().zip(self.dims()).enumerate() {
            let _ = d;
            idx = idx * len as usize + c as usize;
        }
        idx
    }

    /// Converts a row-major linear index back into a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_cells()`.
    #[inline]
    pub fn unravel(&self, idx: usize) -> Coord {
        assert!(
            idx < self.num_cells(),
            "linear index {idx} out of bounds for shape {self}"
        );
        let mut rem = idx;
        let mut vals = [0u32; MAX_NDIM];
        for d in (0..self.ndim()).rev() {
            let len = self.dims[d] as usize;
            vals[d] = (rem % len) as u32;
            rem /= len;
        }
        Coord::new(&vals[..self.ndim()])
    }

    /// Iterates over all coordinates of the shape in row-major order.
    pub fn iter(&self) -> ShapeIter {
        ShapeIter {
            shape: *self,
            next: 0,
            total: self.num_cells(),
        }
    }

    /// The shape obtained by transposing a 2-D shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not 2-dimensional.
    pub fn transpose2(&self) -> Shape {
        assert_eq!(self.ndim, 2, "transpose2 requires a 2-D shape");
        Shape::d2(self.cols(), self.rows())
    }

    /// Clamps a signed coordinate component-wise into this shape, returning
    /// `None` when any component falls outside (used by neighbourhood
    /// operators at array borders).
    pub fn checked_coord(&self, signed: &[i64]) -> Option<Coord> {
        if signed.len() != self.ndim() {
            return None;
        }
        let mut vals = [0u32; MAX_NDIM];
        for (d, &v) in signed.iter().enumerate() {
            if v < 0 || v >= self.dims[d] as i64 {
                return None;
            }
            vals[d] = v as u32;
        }
        Some(Coord::new(&vals[..self.ndim()]))
    }

    /// All in-bounds coordinates within Chebyshev distance `radius` of
    /// `center` (including `center` itself).  This is the footprint used by
    /// convolutions and the cosmic-ray detector.
    pub fn neighborhood(&self, center: &Coord, radius: u32) -> Vec<Coord> {
        assert_eq!(center.ndim(), self.ndim(), "dimension mismatch");
        let r = radius as i64;
        let mut out = Vec::new();
        // Iterate over the hyper-cube of side 2r+1 around the center.
        let ndim = self.ndim();
        let mut offsets = vec![-r; ndim];
        loop {
            let signed: Vec<i64> = (0..ndim)
                .map(|d| center.get(d) as i64 + offsets[d])
                .collect();
            if let Some(c) = self.checked_coord(&signed) {
                out.push(c);
            }
            // Advance the odometer.
            let mut d = ndim;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                offsets[d] += 1;
                if offsets[d] <= r {
                    break;
                }
                offsets[d] = -r;
            }
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Row-major iterator over every coordinate of a [`Shape`].
pub struct ShapeIter {
    shape: Shape,
    next: usize,
    total: usize,
}

impl Iterator for ShapeIter {
    type Item = Coord;

    fn next(&mut self) -> Option<Coord> {
        if self.next >= self.total {
            return None;
        }
        let c = self.shape.unravel(self.next);
        self.next += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ShapeIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = Shape::d2(3, 5);
        assert_eq!(s.ndim(), 2);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 5);
        assert_eq!(s.num_cells(), 15);
        assert_eq!(s.dims(), &[3, 5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = Shape::new(&[3, 0]);
    }

    #[test]
    fn contains_checks_bounds_and_ndim() {
        let s = Shape::d2(3, 5);
        assert!(s.contains(&Coord::d2(2, 4)));
        assert!(!s.contains(&Coord::d2(3, 0)));
        assert!(!s.contains(&Coord::d2(0, 5)));
        assert!(!s.contains(&Coord::d1(0)), "ndim mismatch is not contained");
    }

    #[test]
    fn ravel_unravel_roundtrip_2d() {
        let s = Shape::d2(4, 7);
        for idx in 0..s.num_cells() {
            let c = s.unravel(idx);
            assert_eq!(s.ravel(&c), idx);
        }
    }

    #[test]
    fn ravel_unravel_roundtrip_3d() {
        let s = Shape::d3(3, 4, 5);
        for idx in 0..s.num_cells() {
            let c = s.unravel(idx);
            assert_eq!(s.ravel(&c), idx);
        }
    }

    #[test]
    fn ravel_is_row_major() {
        let s = Shape::d2(2, 3);
        assert_eq!(s.ravel(&Coord::d2(0, 0)), 0);
        assert_eq!(s.ravel(&Coord::d2(0, 2)), 2);
        assert_eq!(s.ravel(&Coord::d2(1, 0)), 3);
        assert_eq!(s.ravel(&Coord::d2(1, 2)), 5);
    }

    #[test]
    fn iter_visits_all_cells_in_order() {
        let s = Shape::d2(2, 2);
        let coords: Vec<Coord> = s.iter().collect();
        assert_eq!(
            coords,
            vec![
                Coord::d2(0, 0),
                Coord::d2(0, 1),
                Coord::d2(1, 0),
                Coord::d2(1, 1)
            ]
        );
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn transpose2_swaps_extents() {
        assert_eq!(Shape::d2(3, 9).transpose2(), Shape::d2(9, 3));
    }

    #[test]
    fn checked_coord_rejects_out_of_bounds() {
        let s = Shape::d2(4, 4);
        assert_eq!(s.checked_coord(&[1, 2]), Some(Coord::d2(1, 2)));
        assert_eq!(s.checked_coord(&[-1, 2]), None);
        assert_eq!(s.checked_coord(&[1, 4]), None);
        assert_eq!(s.checked_coord(&[1]), None);
    }

    #[test]
    fn neighborhood_interior_and_border() {
        let s = Shape::d2(10, 10);
        let n = s.neighborhood(&Coord::d2(5, 5), 1);
        assert_eq!(n.len(), 9);
        let n = s.neighborhood(&Coord::d2(0, 0), 1);
        assert_eq!(n.len(), 4, "corner neighbourhood is clipped");
        let n = s.neighborhood(&Coord::d2(0, 5), 3);
        assert_eq!(n.len(), 4 * 7, "edge neighbourhood is clipped on one side");
        let n = s.neighborhood(&Coord::d2(5, 5), 0);
        assert_eq!(n, vec![Coord::d2(5, 5)]);
    }

    #[test]
    fn neighborhood_1d() {
        let s = Shape::d1(10);
        let n = s.neighborhood(&Coord::d1(0), 2);
        assert_eq!(n, vec![Coord::d1(0), Coord::d1(1), Coord::d1(2)]);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Shape::d2(512, 2000)), "[512x2000]");
        assert_eq!(format!("{}", Shape::d1(7)), "[7]");
    }
}
