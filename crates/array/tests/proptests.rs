//! Property-based tests for the array substrate.

use proptest::prelude::*;
use subzero_array::{Array, BoundingBox, CellSet, Coord, Shape};

/// The legacy `CellSet` representation — one flat `u64` bitmap over the whole
/// shape — kept here as the parity oracle for the adaptive chunked container
/// that replaced it.
struct DenseBitmap {
    words: Vec<u64>,
    count: usize,
    num_cells: usize,
}

impl DenseBitmap {
    fn new(num_cells: usize) -> Self {
        Self {
            words: vec![0u64; num_cells.div_ceil(64)],
            count: 0,
            num_cells,
        }
    }

    fn insert(&mut self, idx: usize) -> bool {
        assert!(idx < self.num_cells);
        let (wi, bit) = (idx / 64, 1u64 << (idx % 64));
        let added = self.words[wi] & bit == 0;
        self.words[wi] |= bit;
        self.count += added as usize;
        added
    }

    fn contains(&self, idx: usize) -> bool {
        idx < self.num_cells && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_cells).filter(|&i| self.contains(i))
    }

    fn bounds(&self) -> Option<(usize, usize)> {
        let lo = self.iter().next()?;
        let hi = self.iter().last()?;
        Some((lo, hi))
    }

    fn intersection_len(&self, other: &Self) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    fn union_with(&mut self, other: &Self) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.count = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

/// Strategy producing an arbitrary 1–3 dimensional shape with a bounded cell
/// count so the exhaustive checks stay fast.
fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (1u32..200).prop_map(Shape::d1),
        (1u32..40, 1u32..40).prop_map(|(r, c)| Shape::d2(r, c)),
        (1u32..12, 1u32..12, 1u32..12).prop_map(|(a, b, c)| Shape::d3(a, b, c)),
    ]
}

/// Strategy producing a shape together with a valid coordinate inside it.
fn shape_and_coord() -> impl Strategy<Value = (Shape, Coord)> {
    shape_strategy().prop_flat_map(|shape| {
        let n = shape.num_cells();
        (Just(shape), 0..n).prop_map(|(shape, idx)| (shape, shape.unravel(idx)))
    })
}

proptest! {
    #[test]
    fn ravel_unravel_roundtrip((shape, coord) in shape_and_coord()) {
        let idx = shape.ravel(&coord);
        prop_assert!(idx < shape.num_cells());
        prop_assert_eq!(shape.unravel(idx), coord);
    }

    #[test]
    fn ravel_is_injective(shape in shape_strategy()) {
        // Distinct coordinates map to distinct linear indices.
        let mut seen = vec![false; shape.num_cells()];
        for c in shape.iter() {
            let idx = shape.ravel(&c);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn cellset_matches_hashset_semantics(
        (shape, _c) in shape_and_coord(),
        picks in prop::collection::vec(0usize..4096, 0..200),
    ) {
        let mut set = CellSet::empty(shape);
        let mut reference = std::collections::HashSet::new();
        for p in picks {
            let idx = p % shape.num_cells();
            let coord = shape.unravel(idx);
            set.insert(&coord);
            reference.insert(idx);
        }
        prop_assert_eq!(set.len(), reference.len());
        for idx in 0..shape.num_cells() {
            prop_assert_eq!(set.contains_linear(idx), reference.contains(&idx));
        }
        prop_assert_eq!(set.is_full(), reference.len() == shape.num_cells());
    }

    #[test]
    fn cellset_union_is_commutative(
        shape in (1u32..30, 1u32..30).prop_map(|(r, c)| Shape::d2(r, c)),
        xs in prop::collection::vec(0usize..900, 0..100),
        ys in prop::collection::vec(0usize..900, 0..100),
    ) {
        let coords_a: Vec<Coord> = xs.iter().map(|&i| shape.unravel(i % shape.num_cells())).collect();
        let coords_b: Vec<Coord> = ys.iter().map(|&i| shape.unravel(i % shape.num_cells())).collect();
        let mut ab = CellSet::from_coords(shape, coords_a.iter().copied());
        ab.union_with(&CellSet::from_coords(shape, coords_b.iter().copied()));
        let mut ba = CellSet::from_coords(shape, coords_b.iter().copied());
        ba.union_with(&CellSet::from_coords(shape, coords_a.iter().copied()));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn bounding_box_encloses_every_input(
        shape in (2u32..50, 2u32..50).prop_map(|(r, c)| Shape::d2(r, c)),
        picks in prop::collection::vec(0usize..2500, 1..64),
    ) {
        let coords: Vec<Coord> = picks.iter().map(|&i| shape.unravel(i % shape.num_cells())).collect();
        let bbox = BoundingBox::enclosing(&coords).unwrap();
        for c in &coords {
            prop_assert!(bbox.contains(c));
        }
        // The box is tight: its corners are realised by some input coordinate
        // in every dimension.
        for d in 0..2 {
            let lo = coords.iter().map(|c| c.get(d)).min().unwrap();
            let hi = coords.iter().map(|c| c.get(d)).max().unwrap();
            prop_assert_eq!(bbox.lo().get(d), lo);
            prop_assert_eq!(bbox.hi().get(d), hi);
        }
    }

    #[test]
    fn neighborhood_is_chebyshev_ball(
        (shape, center) in shape_and_coord(),
        radius in 0u32..4,
    ) {
        let neigh = shape.neighborhood(&center, radius);
        // Every returned coordinate is in bounds and within the radius.
        for c in &neigh {
            prop_assert!(shape.contains(c));
            prop_assert!(c.chebyshev(&center) <= radius);
        }
        // Every in-bounds cell within the radius is returned.
        let expect = shape
            .iter()
            .filter(|c| c.chebyshev(&center) <= radius)
            .count();
        prop_assert_eq!(neigh.len(), expect);
    }

    #[test]
    fn array_map_preserves_shape_and_applies_fn(
        shape in (1u32..20, 1u32..20).prop_map(|(r, c)| Shape::d2(r, c)),
        scale in -10.0f64..10.0,
    ) {
        let a = Array::from_fn(shape, |c| c.get(0) as f64 + c.get(1) as f64);
        let b = a.map(|v| v * scale);
        prop_assert_eq!(b.shape(), shape);
        for (c, v) in a.iter() {
            prop_assert_eq!(b.get(&c), v * scale);
        }
    }

    #[test]
    fn adaptive_matches_legacy_bitmap_under_mixed_ops(
        ncells in 1usize..180_000,
        ops in prop::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 0..40),
    ) {
        // Drive the adaptive container and the legacy flat bitmap through an
        // identical random op sequence spanning several 2^16-cell chunks,
        // then demand observably identical sets.
        let shape = Shape::d1(ncells as u32);
        let mut set = CellSet::empty(shape);
        let mut reference = DenseBitmap::new(ncells);
        for &(kind, a, b) in &ops {
            let a = a as usize;
            let b = b as usize;
            match kind {
                0 => {
                    let idx = a % ncells;
                    let added = set.insert_linear(idx);
                    prop_assert_eq!(added, reference.insert(idx));
                }
                1 => {
                    let start = a % ncells;
                    let len = (b % 300).min(ncells - start);
                    set.insert_span(start, len);
                    for i in start..start + len {
                        reference.insert(i);
                    }
                }
                2 => {
                    // A strided batch for insert_sorted; odd strides visit
                    // distinct cells, so sort + dedup gives a valid input.
                    let stride = (b % 97) | 1;
                    let mut batch: Vec<u64> =
                        (0..(a % 64)).map(|k| ((a + k * stride) % ncells) as u64).collect();
                    batch.sort_unstable();
                    batch.dedup();
                    let before = reference.count;
                    for &i in &batch {
                        reference.insert(i as usize);
                    }
                    prop_assert_eq!(set.insert_sorted(&batch), reference.count - before);
                }
                _ => {
                    // A full 64-cell word, masked to stay inside the shape.
                    let nwords = ncells.div_ceil(64);
                    let wi = a % nwords;
                    let valid = ncells - wi * 64;
                    let mask = if valid >= 64 { u64::MAX } else { (1u64 << valid) - 1 };
                    let bits = ((a as u64) << 32 | b as u64) & mask;
                    let before = reference.count;
                    for t in 0..64 {
                        if bits >> t & 1 == 1 {
                            reference.insert(wi * 64 + t);
                        }
                    }
                    prop_assert_eq!(set.insert_word(wi, bits), reference.count - before);
                }
            }
        }
        prop_assert_eq!(set.len(), reference.count);
        prop_assert!(set.iter_linear().eq(reference.iter()));
        prop_assert_eq!(set.bounds_linear(), reference.bounds());
        // runs() must re-tile the exact same membership, maximally coalesced.
        let mut from_runs = Vec::new();
        let mut prev_end: Option<u64> = None;
        for (start, len) in set.runs() {
            prop_assert!(len > 0);
            if let Some(pe) = prev_end {
                prop_assert!(start > pe + 1, "adjacent runs must coalesce");
            }
            from_runs.extend(start..start + len);
            prev_end = Some(start + len - 1);
        }
        prop_assert!(from_runs.iter().map(|&i| i as usize).eq(reference.iter()));
        // Re-normalising representations never changes the observable set.
        let mut optimized = set.clone();
        optimized.optimize();
        prop_assert_eq!(&optimized, &set);
        prop_assert_eq!(optimized.repr_counts().total(), set.repr_counts().total());
    }

    #[test]
    fn promotion_boundaries_preserve_parity(
        extra in 0usize..24,
        stride in 1u32..9,
        seed in any::<u32>(),
    ) {
        // Straddle the sparse→dense boundary (4096 entries per chunk) with a
        // strided pattern, checking membership per insert on the way through.
        let ncells = 1usize << 17;
        let shape = Shape::d1(ncells as u32);
        let mut set = CellSet::empty(shape);
        let mut reference = DenseBitmap::new(ncells);
        let step = (stride as usize) * 2 + 1; // odd: distinct mod 2^16
        let target = 4096 - 12 + extra;
        for k in 0..target {
            let idx = (seed as usize + k * step) % (1 << 16);
            prop_assert_eq!(set.insert_linear(idx), reference.insert(idx));
            prop_assert_eq!(set.len(), reference.count);
        }
        prop_assert!(set.iter_linear().eq(reference.iter()));
        // And the runs→dense boundary (2047 runs per chunk): isolated cells
        // two apart are one run each.
        let mut set = CellSet::empty(shape);
        let mut reference = DenseBitmap::new(ncells);
        let nruns = 2047 - 8 + extra;
        for k in 0..nruns {
            set.insert_span(2 * k, 1);
            reference.insert(2 * k);
        }
        prop_assert_eq!(set.len(), reference.count);
        prop_assert!(set.iter_linear().eq(reference.iter()));
        for idx in 0..4 * nruns {
            prop_assert_eq!(set.contains_linear(idx), reference.contains(idx));
        }
    }

    #[test]
    fn intersect_sorted_reports_exact_intersection(
        ncells in 64usize..100_000,
        picks in prop::collection::vec(any::<u32>(), 0..120),
        probes in prop::collection::vec(any::<u32>(), 0..120),
    ) {
        let shape = Shape::d1(ncells as u32);
        let mut set = CellSet::empty(shape);
        for &p in &picks {
            set.insert_linear(p as usize % ncells);
        }
        let mut probes: Vec<u64> = probes.iter().map(|&p| (p as usize % ncells) as u64).collect();
        probes.sort_unstable();
        probes.dedup();
        let mut hits = Vec::new();
        let any_hit = set.intersect_sorted(&probes, |x| hits.push(x));
        let expect: Vec<u64> = probes
            .iter()
            .copied()
            .filter(|&x| set.contains_linear(x as usize))
            .collect();
        prop_assert_eq!(any_hit, !expect.is_empty());
        prop_assert_eq!(hits, expect);
    }

    #[test]
    fn union_and_intersection_match_bitmap_reference(
        ncells in 64usize..100_000,
        xs in prop::collection::vec(any::<u32>(), 0..150),
        spans in prop::collection::vec((any::<u32>(), 1u32..400), 0..6),
    ) {
        let shape = Shape::d1(ncells as u32);
        let mut a = CellSet::empty(shape);
        let mut ra = DenseBitmap::new(ncells);
        for &x in &xs {
            a.insert_linear(x as usize % ncells);
            ra.insert(x as usize % ncells);
        }
        let mut b = CellSet::empty(shape);
        let mut rb = DenseBitmap::new(ncells);
        for &(start, len) in &spans {
            let start = start as usize % ncells;
            let len = (len as usize).min(ncells - start);
            b.insert_span(start, len);
            for i in start..start + len {
                rb.insert(i);
            }
        }
        prop_assert_eq!(a.intersection_len(&b), ra.intersection_len(&rb));
        let mut u = a.clone();
        u.union_with(&b);
        ra.union_with(&rb);
        prop_assert_eq!(u.len(), ra.count);
        prop_assert!(u.iter_linear().eq(ra.iter()));
    }

    #[test]
    fn construction_order_is_unobservable(
        ncells in 64usize..80_000,
        picks in prop::collection::vec(any::<u32>(), 0..200),
    ) {
        let shape = Shape::d1(ncells as u32);
        // Per-index inserts in arrival order...
        let mut one_at_a_time = CellSet::empty(shape);
        for &p in &picks {
            one_at_a_time.insert_linear(p as usize % ncells);
        }
        // ...versus one bulk sorted insert of the same cells.
        let mut sorted: Vec<u64> = picks.iter().map(|&p| (p as usize % ncells) as u64).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut bulk = CellSet::empty(shape);
        bulk.insert_sorted(&sorted);
        prop_assert_eq!(&one_at_a_time, &bulk);
        // Equality is semantic: normalising one side must not break it.
        bulk.optimize();
        prop_assert_eq!(&one_at_a_time, &bulk);
    }

    #[test]
    fn array_slice_matches_direct_indexing(
        rows in 2u32..20,
        cols in 2u32..20,
    ) {
        let shape = Shape::d2(rows, cols);
        let a = Array::from_fn(shape, |c| (c.get(0) * 1000 + c.get(1)) as f64);
        let lo = Coord::d2(rows / 4, cols / 4);
        let hi = Coord::d2(rows - 1, cols - 1);
        let s = a.slice(&lo, &hi).unwrap();
        for (c, v) in s.iter() {
            let src = Coord::d2(c.get(0) + lo.get(0), c.get(1) + lo.get(1));
            prop_assert_eq!(v, a.get(&src));
        }
    }
}
