//! Property-based tests for the array substrate.

use proptest::prelude::*;
use subzero_array::{Array, BoundingBox, CellSet, Coord, Shape};

/// Strategy producing an arbitrary 1–3 dimensional shape with a bounded cell
/// count so the exhaustive checks stay fast.
fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (1u32..200).prop_map(Shape::d1),
        (1u32..40, 1u32..40).prop_map(|(r, c)| Shape::d2(r, c)),
        (1u32..12, 1u32..12, 1u32..12).prop_map(|(a, b, c)| Shape::d3(a, b, c)),
    ]
}

/// Strategy producing a shape together with a valid coordinate inside it.
fn shape_and_coord() -> impl Strategy<Value = (Shape, Coord)> {
    shape_strategy().prop_flat_map(|shape| {
        let n = shape.num_cells();
        (Just(shape), 0..n).prop_map(|(shape, idx)| (shape, shape.unravel(idx)))
    })
}

proptest! {
    #[test]
    fn ravel_unravel_roundtrip((shape, coord) in shape_and_coord()) {
        let idx = shape.ravel(&coord);
        prop_assert!(idx < shape.num_cells());
        prop_assert_eq!(shape.unravel(idx), coord);
    }

    #[test]
    fn ravel_is_injective(shape in shape_strategy()) {
        // Distinct coordinates map to distinct linear indices.
        let mut seen = vec![false; shape.num_cells()];
        for c in shape.iter() {
            let idx = shape.ravel(&c);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn cellset_matches_hashset_semantics(
        (shape, _c) in shape_and_coord(),
        picks in prop::collection::vec(0usize..4096, 0..200),
    ) {
        let mut set = CellSet::empty(shape);
        let mut reference = std::collections::HashSet::new();
        for p in picks {
            let idx = p % shape.num_cells();
            let coord = shape.unravel(idx);
            set.insert(&coord);
            reference.insert(idx);
        }
        prop_assert_eq!(set.len(), reference.len());
        for idx in 0..shape.num_cells() {
            prop_assert_eq!(set.contains_linear(idx), reference.contains(&idx));
        }
        prop_assert_eq!(set.is_full(), reference.len() == shape.num_cells());
    }

    #[test]
    fn cellset_union_is_commutative(
        shape in (1u32..30, 1u32..30).prop_map(|(r, c)| Shape::d2(r, c)),
        xs in prop::collection::vec(0usize..900, 0..100),
        ys in prop::collection::vec(0usize..900, 0..100),
    ) {
        let coords_a: Vec<Coord> = xs.iter().map(|&i| shape.unravel(i % shape.num_cells())).collect();
        let coords_b: Vec<Coord> = ys.iter().map(|&i| shape.unravel(i % shape.num_cells())).collect();
        let mut ab = CellSet::from_coords(shape, coords_a.iter().copied());
        ab.union_with(&CellSet::from_coords(shape, coords_b.iter().copied()));
        let mut ba = CellSet::from_coords(shape, coords_b.iter().copied());
        ba.union_with(&CellSet::from_coords(shape, coords_a.iter().copied()));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn bounding_box_encloses_every_input(
        shape in (2u32..50, 2u32..50).prop_map(|(r, c)| Shape::d2(r, c)),
        picks in prop::collection::vec(0usize..2500, 1..64),
    ) {
        let coords: Vec<Coord> = picks.iter().map(|&i| shape.unravel(i % shape.num_cells())).collect();
        let bbox = BoundingBox::enclosing(&coords).unwrap();
        for c in &coords {
            prop_assert!(bbox.contains(c));
        }
        // The box is tight: its corners are realised by some input coordinate
        // in every dimension.
        for d in 0..2 {
            let lo = coords.iter().map(|c| c.get(d)).min().unwrap();
            let hi = coords.iter().map(|c| c.get(d)).max().unwrap();
            prop_assert_eq!(bbox.lo().get(d), lo);
            prop_assert_eq!(bbox.hi().get(d), hi);
        }
    }

    #[test]
    fn neighborhood_is_chebyshev_ball(
        (shape, center) in shape_and_coord(),
        radius in 0u32..4,
    ) {
        let neigh = shape.neighborhood(&center, radius);
        // Every returned coordinate is in bounds and within the radius.
        for c in &neigh {
            prop_assert!(shape.contains(c));
            prop_assert!(c.chebyshev(&center) <= radius);
        }
        // Every in-bounds cell within the radius is returned.
        let expect = shape
            .iter()
            .filter(|c| c.chebyshev(&center) <= radius)
            .count();
        prop_assert_eq!(neigh.len(), expect);
    }

    #[test]
    fn array_map_preserves_shape_and_applies_fn(
        shape in (1u32..20, 1u32..20).prop_map(|(r, c)| Shape::d2(r, c)),
        scale in -10.0f64..10.0,
    ) {
        let a = Array::from_fn(shape, |c| c.get(0) as f64 + c.get(1) as f64);
        let b = a.map(|v| v * scale);
        prop_assert_eq!(b.shape(), shape);
        for (c, v) in a.iter() {
            prop_assert_eq!(b.get(&c), v * scale);
        }
    }

    #[test]
    fn array_slice_matches_direct_indexing(
        rows in 2u32..20,
        cols in 2u32..20,
    ) {
        let shape = Shape::d2(rows, cols);
        let a = Array::from_fn(shape, |c| (c.get(0) * 1000 + c.get(1)) as f64);
        let lo = Coord::d2(rows / 4, cols / 4);
        let hi = Coord::d2(rows - 1, cols - 1);
        let s = a.slice(&lo, &hi).unwrap();
        for (c, v) in s.iter() {
            let src = Coord::d2(c.get(0) + lo.get(0), c.get(1) + lo.get(1));
            prop_assert_eq!(v, a.get(&src));
        }
    }
}
