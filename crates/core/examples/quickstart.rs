//! Quickstart: build a tiny workflow, execute it under SubZero, and run
//! backward and forward lineage queries.
//!
//! Run with `cargo run -p subzero --example quickstart`.

use std::collections::HashMap;
use std::sync::Arc;

use subzero::prelude::*;
use subzero_engine::ops::{Convolve, Elementwise1, UnaryKind};

fn main() {
    // A three-operator image pipeline: bias-subtract, smooth, threshold.
    let mut builder = Workflow::builder("quickstart");
    let debias = builder.add_source(
        Arc::new(Elementwise1::new(UnaryKind::Offset(-10.0))),
        "image",
    );
    let smooth = builder.add_unary(Arc::new(Convolve::box_blur(1)), debias);
    let detect = builder.add_unary(
        Arc::new(Elementwise1::new(UnaryKind::Threshold(5.0))),
        smooth,
    );
    let workflow = Arc::new(builder.build().expect("valid workflow"));

    // A 16x16 image with one bright blob.
    let mut image = Array::filled(Shape::d2(16, 16), 10.0);
    for c in Shape::d2(16, 16).neighborhood(&Coord::d2(8, 8), 1) {
        image.set(&c, 200.0);
    }
    let mut inputs = HashMap::new();
    inputs.insert("image".to_string(), image);

    // Execute under the default strategy (mapping lineage for built-ins,
    // black-box otherwise) — nothing extra is stored.
    let mut subzero = SubZero::new();
    let run = subzero
        .execute(&workflow, &inputs)
        .expect("execution succeeds");
    println!(
        "executed workflow '{}' with {} operators in {:?}",
        workflow.name(),
        workflow.len(),
        run.total_elapsed
    );

    // Backward: why is the output pixel at (8, 8) bright?
    let backward = LineageQuery::backward(
        vec![Coord::d2(8, 8)],
        vec![(detect, 0), (smooth, 0), (debias, 0)],
    );
    let answer = subzero.query(&run, &backward).expect("query succeeds");
    println!(
        "backward lineage of detection (8,8): {} input pixels",
        answer.cells.len()
    );
    for (step, report) in answer.report.steps.iter().enumerate() {
        println!(
            "  step {step}: operator {} answered via {} in {:?}",
            report.op_id, report.method, report.elapsed
        );
    }

    // Forward: which detections does the input pixel (8, 9) influence?
    let forward = LineageQuery::forward(
        vec![Coord::d2(8, 9)],
        vec![(debias, 0), (smooth, 0), (detect, 0)],
    );
    let answer = subzero.query(&run, &forward).expect("query succeeds");
    println!(
        "forward lineage of input (8,9): {} output pixels",
        answer.cells.len()
    );
}
