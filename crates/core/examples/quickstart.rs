//! Quickstart: build a tiny workflow, execute it under SubZero, and run
//! backward and forward lineage queries.
//!
//! Run with `cargo run -p subzero --example quickstart`.

use std::collections::HashMap;
use std::sync::Arc;

use subzero::prelude::*;
use subzero_engine::ops::{Convolve, Elementwise1, UnaryKind};

fn main() {
    // A three-operator image pipeline: bias-subtract, smooth, threshold.
    let mut builder = Workflow::builder("quickstart");
    let debias = builder.add_source(
        Arc::new(Elementwise1::new(UnaryKind::Offset(-10.0))),
        "image",
    );
    let smooth = builder.add_unary(Arc::new(Convolve::box_blur(1)), debias);
    let detect = builder.add_unary(
        Arc::new(Elementwise1::new(UnaryKind::Threshold(5.0))),
        smooth,
    );
    let workflow = Arc::new(builder.build().expect("valid workflow"));

    // A 16x16 image with one bright blob.
    let mut image = Array::filled(Shape::d2(16, 16), 10.0);
    for c in Shape::d2(16, 16).neighborhood(&Coord::d2(8, 8), 1) {
        image.set(&c, 200.0);
    }
    let mut inputs = HashMap::new();
    inputs.insert("image".to_string(), image);

    // Execute under the default strategy (mapping lineage for built-ins,
    // black-box otherwise) — nothing extra is stored.
    let mut subzero = SubZero::new();
    let run = subzero
        .execute(&workflow, &inputs)
        .expect("execution succeeds");
    println!(
        "executed workflow '{}' with {} operators in {:?}",
        workflow.name(),
        workflow.len(),
        run.total_elapsed
    );

    // Backward: why is the output pixel at (8, 8) bright?  The session
    // derives the detect -> smooth -> debias -> "image" traversal from the
    // workflow DAG; no (operator, input) path vectors.
    let mut session = subzero.session(&run);
    let answer = session
        .backward(vec![Coord::d2(8, 8)])
        .from(detect)
        .to_source("image")
        .expect("query succeeds");
    println!(
        "backward lineage of detection (8,8): {} input pixels",
        answer.cells.len()
    );
    for (step, report) in answer.report.steps.iter().enumerate() {
        println!(
            "  step {step}: operator {} answered via {} in {:?}",
            report.op_id, report.method, report.elapsed
        );
    }

    // The same trace, streamed step by step through a cursor.
    let mut cursor = session
        .backward(vec![Coord::d2(8, 8)])
        .from(detect)
        .cursor_to_source("image")
        .expect("cursor builds");
    while let Some(step) = cursor.next() {
        let step = step.expect("step succeeds");
        println!(
            "  cursor: operator {} -> {} cells via {}",
            step.op_id,
            step.cells.len(),
            step.report.method
        );
    }

    // Forward: which detections does the input pixel (8, 9) influence?
    let answer = session
        .forward(vec![Coord::d2(8, 9)])
        .from_source("image")
        .to(detect)
        .expect("query succeeds");
    println!(
        "forward lineage of input (8,9): {} output pixels",
        answer.cells.len()
    );

    // A batch of backward queries answered in one shared pass.
    let batch: Vec<Vec<Coord>> = (7..10).map(|r| vec![Coord::d2(r, 8)]).collect();
    let answers = session
        .backward_many(batch)
        .from(detect)
        .to_source("image")
        .expect("batch succeeds");
    println!(
        "batched backward lineage of 3 detections: {:?} input pixels",
        answers.iter().map(|a| a.cells.len()).collect::<Vec<_>>()
    );
}
