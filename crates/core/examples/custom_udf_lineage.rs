//! Writing a lineage-aware user-defined operator.
//!
//! This example implements a small "peak detector" UDF that exposes
//! *composite* lineage: a mapping function describes the default one-to-one
//! relationship, and `lwrite()` payload calls override it for the few peaks,
//! exactly like the cosmic-ray detector of the paper (§V-A4).  It then shows
//! how the choice of storage strategy changes what is stored while leaving
//! query answers identical.
//!
//! Run with `cargo run -p subzero --example custom_udf_lineage`.

use std::collections::HashMap;
use std::sync::Arc;

use subzero::model::{LineageStrategy, StorageStrategy};
use subzero::prelude::*;
use subzero_array::ArrayRef;
use subzero_engine::ops::{Elementwise1, UnaryKind};
use subzero_engine::{LineageSink, OpMeta, Operator};

/// Detects local peaks: output 1 where a cell exceeds `threshold`, else 0.
/// A peak depends on its 3×3 neighbourhood; other cells only on themselves.
struct PeakDetect {
    threshold: f64,
}

impl Operator for PeakDetect {
    fn name(&self) -> &str {
        "peak_detect"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![
            LineageMode::Full,
            LineageMode::Pay,
            LineageMode::Comp,
            LineageMode::Blackbox,
        ]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let shape = input.shape();
        let mut out = Array::zeros(shape);
        for (c, v) in input.iter() {
            if v > self.threshold {
                out.set(&c, 1.0);
                // Peaks depend on the neighbourhood; record that either as a
                // full region pair or as a 1-byte payload (the radius).
                if cur_modes.contains(&LineageMode::Full) {
                    sink.lwrite(vec![c], vec![shape.neighborhood(&c, 1)]);
                }
                if cur_modes.contains(&LineageMode::Comp) || cur_modes.contains(&LineageMode::Pay) {
                    sink.lwrite_payload(vec![c], vec![1u8]);
                }
            } else if cur_modes.contains(&LineageMode::Full) {
                sink.lwrite(vec![c], vec![vec![c]]);
            }
        }
        out
    }

    // The default relationship (used for non-peak cells under composite
    // lineage, and by the query executor when nothing is stored).
    fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![*outcell])
    }

    fn map_forward(&self, incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![*incell])
    }

    // Resolve a stored payload back into input cells at query time.
    fn map_payload(
        &self,
        outcell: &Coord,
        payload: &[u8],
        _i: usize,
        meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        let radius = payload.first().copied().unwrap_or(0) as u32;
        Some(meta.input_shape(0).neighborhood(outcell, radius))
    }
}

fn main() {
    let mut builder = Workflow::builder("custom-udf");
    let scale = builder.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(1.0))), "signal");
    let peaks = builder.add_unary(Arc::new(PeakDetect { threshold: 100.0 }), scale);
    let workflow = Arc::new(builder.build().unwrap());

    let mut signal = Array::filled(Shape::d2(32, 32), 1.0);
    signal.set(&Coord::d2(5, 5), 500.0);
    signal.set(&Coord::d2(20, 17), 900.0);
    let mut inputs = HashMap::new();
    inputs.insert("signal".to_string(), signal);

    for (label, strategy) in [
        (
            "black-box (re-execute at query time)",
            LineageStrategy::new(),
        ),
        (
            "full lineage (FullMany)",
            LineageStrategy::uniform([peaks], vec![StorageStrategy::full_many()]),
        ),
        (
            "composite lineage (PayOne overrides + mapping default)",
            LineageStrategy::uniform([peaks], vec![StorageStrategy::composite_one()]),
        ),
    ] {
        let mut subzero = SubZero::new();
        subzero.set_strategy(strategy);
        let run = subzero.execute(&workflow, &inputs).unwrap();
        // Trace the second peak back to the signal; the session derives the
        // peaks -> scale -> "signal" traversal from the DAG.
        let result = subzero
            .session(&run)
            .backward(vec![Coord::d2(20, 17)])
            .from(peaks)
            .to_source("signal")
            .unwrap();
        println!(
            "{label:55} lineage stored: {:6} bytes, peak (20,17) depends on {} input cells via {}",
            subzero.lineage_bytes(run.run_id),
            result.cells.len(),
            result.report.steps[0].method,
        );
    }
}
