//! Storage strategies and workflow-level strategy assignments.
//!
//! "Each storage strategy is fully specified by a lineage mode (Full, Map,
//! Payload, Composite, or Black-box), encoding strategy, and whether it is
//! forward or backward optimized.  SubZero can use multiple storage
//! strategies to optimize for different query types." (§VI-B)
//!
//! This module defines those strategies ([`StorageStrategy`]) and the
//! per-workflow assignment of strategies to operators ([`LineageStrategy`]),
//! which is what the optimizer produces.

use std::collections::HashMap;
use std::fmt;

use subzero_engine::{LineageMode, OpId};

/// Whether an encoding keys its hash entries by output cells (serving
/// backward queries with direct lookups) or by input cells (serving forward
/// queries).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Hash keys are output cells: backward-optimized (`←` in the paper).
    Backward,
    /// Hash keys are input cells: forward-optimized (`→` in the paper).
    Forward,
}

impl Direction {
    /// Short arrow notation used in reports (matches the paper's figures).
    pub fn arrow(&self) -> &'static str {
        match self {
            Direction::Backward => "<-",
            Direction::Forward => "->",
        }
    }
}

/// Whether each key-side cell gets its own hash entry (`One`) or the whole
/// cell set of a region pair is stored as a single entry indexed by an R-tree
/// (`Many`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One hash entry per key-side cell (`FullOne` / `PayOne`).
    One,
    /// One hash entry per region pair, with a spatial index over the key
    /// cells (`FullMany` / `PayMany`).
    Many,
}

/// Errors raised when constructing invalid strategies or assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// The combination of mode/granularity/direction is not meaningful.
    InvalidCombination(String),
    /// A strategy references an operator that does not support the requested
    /// lineage mode.
    UnsupportedMode {
        /// The operator id.
        op: OpId,
        /// The requested mode.
        mode: LineageMode,
    },
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::InvalidCombination(msg) => write!(f, "invalid strategy: {msg}"),
            StrategyError::UnsupportedMode { op, mode } => {
                write!(f, "operator {op} does not support lineage mode {mode}")
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// A fully-specified storage strategy for one operator.
///
/// The paper's named strategies map to this type as:
///
/// | Paper name | Constructor |
/// |---|---|
/// | BlackBox     | [`StorageStrategy::blackbox()`] |
/// | mapping lineage | [`StorageStrategy::mapping()`] |
/// | ← FullOne    | [`StorageStrategy::full_one()`] |
/// | ← FullMany   | [`StorageStrategy::full_many()`] |
/// | → FullOne    | [`StorageStrategy::full_one_forward()`] |
/// | ← PayOne     | [`StorageStrategy::pay_one()`] |
/// | ← PayMany    | [`StorageStrategy::pay_many()`] |
/// | composite (PayOne overrides + mapping default) | [`StorageStrategy::composite_one()`] |
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct StorageStrategy {
    /// The lineage mode the operator is asked to generate.
    pub mode: LineageMode,
    /// Hash-entry granularity (ignored for `Map`/`Blackbox`).
    pub granularity: Granularity,
    /// Index direction (ignored for `Map`/`Blackbox`; payload lineage is
    /// always backward-optimized because payloads cannot be indexed by input
    /// cell).
    pub direction: Direction,
}

impl StorageStrategy {
    /// Black-box lineage only: re-run the operator at query time.
    pub fn blackbox() -> Self {
        StorageStrategy {
            mode: LineageMode::Blackbox,
            granularity: Granularity::One,
            direction: Direction::Backward,
        }
    }

    /// Mapping lineage: no stored pairs; queries call `map_b`/`map_f`.
    pub fn mapping() -> Self {
        StorageStrategy {
            mode: LineageMode::Map,
            granularity: Granularity::One,
            direction: Direction::Backward,
        }
    }

    /// Backward-optimized `FullOne`.
    pub fn full_one() -> Self {
        StorageStrategy {
            mode: LineageMode::Full,
            granularity: Granularity::One,
            direction: Direction::Backward,
        }
    }

    /// Backward-optimized `FullMany`.
    pub fn full_many() -> Self {
        StorageStrategy {
            mode: LineageMode::Full,
            granularity: Granularity::Many,
            direction: Direction::Backward,
        }
    }

    /// Forward-optimized `FullOne` (`→ FullOne` / `FullForw` in the paper).
    pub fn full_one_forward() -> Self {
        StorageStrategy {
            mode: LineageMode::Full,
            granularity: Granularity::One,
            direction: Direction::Forward,
        }
    }

    /// Forward-optimized `FullMany`.
    pub fn full_many_forward() -> Self {
        StorageStrategy {
            mode: LineageMode::Full,
            granularity: Granularity::Many,
            direction: Direction::Forward,
        }
    }

    /// Backward-optimized `PayOne`.
    pub fn pay_one() -> Self {
        StorageStrategy {
            mode: LineageMode::Pay,
            granularity: Granularity::One,
            direction: Direction::Backward,
        }
    }

    /// Backward-optimized `PayMany`.
    pub fn pay_many() -> Self {
        StorageStrategy {
            mode: LineageMode::Pay,
            granularity: Granularity::Many,
            direction: Direction::Backward,
        }
    }

    /// Composite lineage stored with the `PayOne` encoding (the strategy the
    /// paper's `SubZero` configuration uses for the astronomy UDFs).
    pub fn composite_one() -> Self {
        StorageStrategy {
            mode: LineageMode::Comp,
            granularity: Granularity::One,
            direction: Direction::Backward,
        }
    }

    /// Composite lineage stored with the `PayMany` encoding.
    pub fn composite_many() -> Self {
        StorageStrategy {
            mode: LineageMode::Comp,
            granularity: Granularity::Many,
            direction: Direction::Backward,
        }
    }

    /// Whether the strategy materialises region pairs at workflow runtime.
    pub fn stores_pairs(&self) -> bool {
        self.mode.stores_pairs()
    }

    /// Whether this strategy's stored layout directly serves queries of the
    /// given direction with indexed lookups (as opposed to a full scan).
    pub fn serves(&self, query_direction: Direction) -> bool {
        match self.mode {
            LineageMode::Blackbox => true,
            LineageMode::Map => true,
            // Payload/composite lineage can only be indexed by output cells.
            LineageMode::Pay | LineageMode::Comp => query_direction == Direction::Backward,
            LineageMode::Full => self.direction == query_direction,
        }
    }

    /// Validates mode/granularity/direction coherence.
    pub fn validate(&self) -> Result<(), StrategyError> {
        if matches!(self.mode, LineageMode::Pay | LineageMode::Comp)
            && self.direction == Direction::Forward
        {
            return Err(StrategyError::InvalidCombination(
                "payload and composite lineage cannot be forward-optimized: the payload is an \
                 opaque blob that cannot be indexed by input cell"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// The short, paper-style display name, e.g. `<-FullMany` or `Map`.
    pub fn label(&self) -> String {
        match self.mode {
            LineageMode::Blackbox => "BlackBox".to_string(),
            LineageMode::Map => "Map".to_string(),
            LineageMode::Full => format!(
                "{}Full{}",
                self.direction.arrow(),
                match self.granularity {
                    Granularity::One => "One",
                    Granularity::Many => "Many",
                }
            ),
            LineageMode::Pay => format!(
                "{}Pay{}",
                self.direction.arrow(),
                match self.granularity {
                    Granularity::One => "One",
                    Granularity::Many => "Many",
                }
            ),
            LineageMode::Comp => format!(
                "{}Comp{}",
                self.direction.arrow(),
                match self.granularity {
                    Granularity::One => "One",
                    Granularity::Many => "Many",
                }
            ),
        }
    }

    /// A filesystem/database-safe identifier for this strategy.
    pub fn db_suffix(&self) -> String {
        format!(
            "{}_{}_{}",
            self.mode.short_name(),
            match self.granularity {
                Granularity::One => "one",
                Granularity::Many => "many",
            },
            match self.direction {
                Direction::Backward => "bwd",
                Direction::Forward => "fwd",
            }
        )
    }
}

impl fmt::Display for StorageStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A workflow-level lineage strategy: for every operator, the set of storage
/// strategies it should use (an operator "may store its lineage data using
/// multiple strategies", §VII).
///
/// Operators without an entry use the default strategy, which is black-box
/// plus mapping lineage when the operator is a mapping operator (that mirrors
/// the paper's `BlackBoxOpt` baseline and the optimizer's unconditional
/// preference for mapping functions).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LineageStrategy {
    assignments: HashMap<OpId, Vec<StorageStrategy>>,
}

impl LineageStrategy {
    /// An empty assignment (every operator uses the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an assignment where every operator in `ops` uses `strategies`.
    pub fn uniform(ops: impl IntoIterator<Item = OpId>, strategies: Vec<StorageStrategy>) -> Self {
        let mut s = Self::new();
        for op in ops {
            s.assignments.insert(op, strategies.clone());
        }
        s
    }

    /// Sets the strategies for one operator, replacing any previous entry.
    pub fn set(&mut self, op: OpId, strategies: Vec<StorageStrategy>) -> &mut Self {
        self.assignments.insert(op, strategies);
        self
    }

    /// Adds one strategy to an operator's set.
    pub fn add(&mut self, op: OpId, strategy: StorageStrategy) -> &mut Self {
        self.assignments.entry(op).or_default().push(strategy);
        self
    }

    /// The strategies assigned to `op`, if any were set explicitly.
    pub fn get(&self, op: OpId) -> Option<&[StorageStrategy]> {
        self.assignments.get(&op).map(|v| v.as_slice())
    }

    /// Operators with explicit assignments.
    pub fn assigned_ops(&self) -> Vec<OpId> {
        let mut ops: Vec<OpId> = self.assignments.keys().copied().collect();
        ops.sort_unstable();
        ops
    }

    /// Whether any assigned strategy for `op` materialises pairs.
    pub fn stores_pairs_for(&self, op: OpId) -> bool {
        self.get(op)
            .map(|ss| ss.iter().any(|s| s.stores_pairs()))
            .unwrap_or(false)
    }

    /// Validates every assigned strategy.
    pub fn validate(&self) -> Result<(), StrategyError> {
        for strategies in self.assignments.values() {
            for s in strategies {
                s.validate()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(StorageStrategy::blackbox().label(), "BlackBox");
        assert_eq!(StorageStrategy::mapping().label(), "Map");
        assert_eq!(StorageStrategy::full_one().label(), "<-FullOne");
        assert_eq!(StorageStrategy::full_many().label(), "<-FullMany");
        assert_eq!(StorageStrategy::full_one_forward().label(), "->FullOne");
        assert_eq!(StorageStrategy::pay_one().label(), "<-PayOne");
        assert_eq!(StorageStrategy::pay_many().label(), "<-PayMany");
        assert_eq!(StorageStrategy::composite_one().label(), "<-CompOne");
    }

    #[test]
    fn db_suffix_is_filesystem_safe() {
        for s in [
            StorageStrategy::full_many(),
            StorageStrategy::pay_one(),
            StorageStrategy::full_one_forward(),
        ] {
            let suffix = s.db_suffix();
            assert!(suffix
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
        assert_eq!(StorageStrategy::full_many().db_suffix(), "full_many_bwd");
    }

    #[test]
    fn serves_matches_index_direction() {
        assert!(StorageStrategy::full_one().serves(Direction::Backward));
        assert!(!StorageStrategy::full_one().serves(Direction::Forward));
        assert!(StorageStrategy::full_one_forward().serves(Direction::Forward));
        assert!(!StorageStrategy::full_one_forward().serves(Direction::Backward));
        assert!(StorageStrategy::pay_many().serves(Direction::Backward));
        assert!(!StorageStrategy::pay_many().serves(Direction::Forward));
        assert!(StorageStrategy::mapping().serves(Direction::Forward));
        assert!(StorageStrategy::blackbox().serves(Direction::Backward));
    }

    #[test]
    fn forward_payload_is_invalid() {
        let s = StorageStrategy {
            mode: LineageMode::Pay,
            granularity: Granularity::One,
            direction: Direction::Forward,
        };
        assert!(s.validate().is_err());
        assert!(StorageStrategy::pay_one().validate().is_ok());
        assert!(StorageStrategy::composite_one().validate().is_ok());
    }

    #[test]
    fn stores_pairs_follows_mode() {
        assert!(!StorageStrategy::blackbox().stores_pairs());
        assert!(!StorageStrategy::mapping().stores_pairs());
        assert!(StorageStrategy::full_one().stores_pairs());
        assert!(StorageStrategy::pay_many().stores_pairs());
        assert!(StorageStrategy::composite_one().stores_pairs());
    }

    #[test]
    fn lineage_strategy_assignment() {
        let mut ls = LineageStrategy::new();
        assert!(ls.get(0).is_none());
        ls.set(0, vec![StorageStrategy::full_one()]);
        ls.add(0, StorageStrategy::full_one_forward());
        ls.add(3, StorageStrategy::pay_one());
        assert_eq!(ls.get(0).unwrap().len(), 2);
        assert_eq!(ls.assigned_ops(), vec![0, 3]);
        assert!(ls.stores_pairs_for(0));
        assert!(!ls.stores_pairs_for(1));
        assert!(ls.validate().is_ok());
    }

    #[test]
    fn uniform_assignment() {
        let ls = LineageStrategy::uniform(0..3, vec![StorageStrategy::pay_one()]);
        assert_eq!(ls.assigned_ops(), vec![0, 1, 2]);
        assert_eq!(ls.get(2).unwrap()[0], StorageStrategy::pay_one());
    }

    #[test]
    fn strategy_error_display() {
        let e = StrategyError::UnsupportedMode {
            op: 4,
            mode: LineageMode::Pay,
        };
        assert!(e.to_string().contains("operator 4"));
    }
}
