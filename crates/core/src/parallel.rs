//! Scoped worker-thread helpers for the batched ingestion pipeline.
//!
//! The capture hot path is lock-free by construction: work is split into
//! disjoint shards (a chunk of a batch to encode, or one per-operator
//! datastore to flush) and each shard is owned by exactly one scoped thread
//! for the duration of the call.  On single-core hosts (`workers <= 1`) every
//! helper degrades to a plain serial loop with zero thread overhead.
//!
//! Edge cases are pinned down by contract (and by unit + property tests):
//! a zero or one worker budget, an empty input, and an input below the
//! serial threshold never spawn a thread; a budget larger than the item
//! count is capped at one thread per item.  All threading goes through
//! [`crate::sync::thread`] so `tests/loom.rs` can model-check the fan-out.

use crate::sync::thread;

/// Default worker count: the host's available parallelism, capped so a wide
/// machine does not spawn more encode threads than a batch can feed.
pub fn default_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Splits a worker budget across `shares` concurrent consumers: each share
/// gets an equal slice, never less than one worker.  Used when independent
/// units (datastore shards flushed in parallel, capture flusher threads) each
/// run their own `store_batch` and must not collectively oversubscribe the
/// host.
pub fn split_budget(workers: usize, shares: usize) -> usize {
    if shares <= 1 {
        workers.max(1)
    } else {
        (workers / shares).max(1)
    }
}

/// Minimum number of items before `parallel_map` spawns threads; below this
/// the spawn overhead outweighs the encode work.
const PARALLEL_MIN_ITEMS: usize = 64;

/// Maps `f` over `items`, preserving order, using up to `workers` scoped
/// threads.  Runs serially when `workers <= 1` or the input is small.
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_min(items, workers, PARALLEL_MIN_ITEMS, f)
}

/// [`parallel_map`] with a caller-chosen serial threshold.
///
/// The default threshold assumes per-item work on the order of one encode —
/// too coarse for the batched query path, where a single item (one query of a
/// multi-query batch) can carry an entire scan join.  Such callers pass a
/// small `min_items` so even a handful of heavy items fans out.
pub fn parallel_map_min<T, U, F>(items: &[T], workers: usize, min_items: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if workers <= 1 || items.len() < min_items.max(2) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // A budget larger than the item count would slice chunks of one item
    // anyway; cap it so the chunk arithmetic can never produce more threads
    // than items.
    let workers = workers.min(items.len());
    let chunk = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(ci * chunk + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("encode worker panicked"))
            .collect()
    })
}

/// Splits `items` into up to `workers` contiguous chunks and maps `g` over
/// the chunks on scoped threads, returning the per-chunk results in order.
///
/// `g` receives the global index of its chunk's first item.  This is the
/// shape the arena encode phase and the batched lookups want: each worker
/// owns one contiguous shard and can amortise per-shard state (an encode
/// arena, a decoded-entry cache) across every item in it.  With `workers <=
/// 1` or fewer than `min_items` items the whole input is one chunk processed
/// inline, so chunking never changes observable results — only how the work
/// is sliced.
pub fn parallel_chunks<T, U, F>(items: &[T], workers: usize, min_items: usize, g: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    if workers <= 1 || items.len() < min_items.max(2) {
        return vec![g(0, items)];
    }
    let workers = workers.min(items.len());
    let chunk = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let g = &g;
                scope.spawn(move || g(ci * chunk, slice))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk worker panicked"))
            .collect()
    })
}

/// [`parallel_chunks`] with one slot of caller-owned mutable state pinned to
/// each chunk: chunk `i` runs with exclusive access to `states[i]`, so
/// per-worker state that outlives one call (a decoded-entry cache, say)
/// keeps a stable shard↔state association across calls — the state that
/// served a query range last batch serves the same range next batch, warm,
/// instead of being rebuilt at every call site.
///
/// The chunk count is `states.len()` capped at one chunk per item; with a
/// single state or fewer than `min_items` items the whole input is one chunk
/// processed inline with `states[0]`.  Like [`parallel_chunks`], slicing
/// never changes observable results — states only memoise shared reads.
pub fn parallel_chunks_stateful<T, S, U, F>(
    items: &[T],
    states: &mut [S],
    min_items: usize,
    g: F,
) -> Vec<U>
where
    T: Sync,
    S: Send,
    U: Send,
    F: Fn(usize, &mut S, &[T]) -> U + Sync,
{
    assert!(
        !states.is_empty(),
        "stateful fan-out needs at least one state"
    );
    if states.len() <= 1 || items.len() < min_items.max(2) {
        return vec![g(0, &mut states[0], items)];
    }
    let shards = states.len().min(items.len());
    let chunk = items.len().div_ceil(shards);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .zip(states.iter_mut())
            .enumerate()
            .map(|(ci, (slice, state))| {
                let g = &g;
                scope.spawn(move || g(ci * chunk, state, slice))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk worker panicked"))
            .collect()
    })
}

/// Runs `f` once per item with exclusive access, one scoped thread per item
/// when `parallel` is set (used to flush the independent per-operator
/// datastore shards concurrently).
pub fn for_each_mut<T, F>(items: &mut [T], parallel: bool, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if !parallel || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    thread::scope(|scope| {
        for (i, item) in items.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move || f(i, item));
        }
    });
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    /// Runs `run` with a probe that records every thread executing an item,
    /// returning the set of observed thread ids.
    fn observed_threads(run: impl FnOnce(&(dyn Fn() + Sync))) -> HashSet<ThreadId> {
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let probe = || {
            seen.lock().unwrap().insert(std::thread::current().id());
        };
        run(&probe);
        seen.into_inner().unwrap()
    }

    #[test]
    fn zero_workers_and_empty_inputs_never_spawn() {
        // workers == 0 stays on the calling thread.
        let items: Vec<u32> = (0..100).collect();
        let seen = observed_threads(|probe| {
            let out = parallel_map_min(&items, 0, 2, |i, &v| {
                probe();
                v + i as u32
            });
            assert_eq!(out.len(), 100);
        });
        assert_eq!(seen.len(), 1, "workers=0 must not spawn");
        assert!(seen.contains(&std::thread::current().id()));

        // An empty input short-circuits before any scope is entered.
        let empty: Vec<u32> = Vec::new();
        let seen = observed_threads(|probe| {
            assert!(parallel_map_min(&empty, 8, 0, |_, &v| {
                probe();
                v
            })
            .is_empty());
        });
        assert!(seen.is_empty(), "empty input must not run f at all");
        assert_eq!(parallel_chunks(&empty, 8, 0, |_, s| s.len()), vec![0]);
    }

    #[test]
    fn oversized_worker_budget_caps_at_one_thread_per_item() {
        // 3 items with a budget of 64: at most 3 worker threads may touch
        // the items (the serial threshold is forced down to let it fan out).
        let items = [1u32, 2, 3];
        let seen = observed_threads(|probe| {
            let out = parallel_map_min(&items, 64, 2, |i, &v| {
                probe();
                v + i as u32
            });
            assert_eq!(out, vec![1, 3, 5]);
        });
        assert!(
            seen.len() <= items.len(),
            "spawned more threads than items: {}",
            seen.len()
        );
        let chunks = parallel_chunks(&items, 64, 2, |start, slice| (start, slice.to_vec()));
        assert_eq!(chunks.len(), items.len(), "one single-item chunk per item");
    }

    proptest! {
        #[test]
        fn parallel_map_min_matches_serial_for_any_config(
            len in 0usize..40,
            workers in 0usize..12,
            min_items in 0usize..12,
        ) {
            let items: Vec<u64> = (0..len as u64).map(|v| v * 3 + 1).collect();
            let serial: Vec<u64> =
                items.iter().enumerate().map(|(i, &v)| v * 2 + i as u64).collect();
            let par = parallel_map_min(&items, workers, min_items, |i, &v| v * 2 + i as u64);
            prop_assert_eq!(par, serial);
        }

        #[test]
        fn parallel_chunks_rebuild_input_for_any_config(
            len in 0usize..40,
            workers in 0usize..12,
            min_items in 0usize..12,
        ) {
            let items: Vec<u64> = (0..len as u64).collect();
            let chunks = parallel_chunks(&items, workers, min_items, |start, slice| {
                (start, slice.to_vec())
            });
            let mut rebuilt = Vec::new();
            for (start, slice) in &chunks {
                prop_assert_eq!(*start, rebuilt.len());
                rebuilt.extend_from_slice(slice);
            }
            prop_assert_eq!(rebuilt, items.clone());
            prop_assert!(chunks.len() <= items.len().max(1), "more chunks than items");
        }

        #[test]
        fn split_budget_partitions_without_starving(
            workers in 0usize..32,
            shares in 0usize..32,
        ) {
            let per_share = split_budget(workers, shares);
            prop_assert!(per_share >= 1, "a share must never be starved");
            if shares <= 1 {
                prop_assert_eq!(per_share, workers.max(1));
            } else if workers >= shares {
                prop_assert!(
                    per_share * shares <= workers,
                    "shares oversubscribe a sufficient budget: \
                     {} shares x {} workers each from {}",
                    shares, per_share, workers
                );
            } else {
                prop_assert_eq!(per_share, 1);
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        for workers in [1, 2, 5] {
            let out = parallel_map(&items, workers, |i, &v| (i as u32, v * 2));
            assert_eq!(out.len(), 1000);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx as usize, i);
                assert_eq!(*doubled, items[i] * 2);
            }
        }
    }

    #[test]
    fn parallel_map_small_inputs_stay_serial() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 8, |_, &v| v + 1), vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &v| v).is_empty());
    }

    #[test]
    fn for_each_mut_touches_every_item() {
        for parallel in [false, true] {
            let mut items = vec![0u64; 5];
            for_each_mut(&mut items, parallel, |i, v| *v = i as u64 + 10);
            assert_eq!(items, vec![10, 11, 12, 13, 14]);
        }
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
        assert!(default_workers() <= 8);
    }

    #[test]
    fn split_budget_never_starves_a_share() {
        assert_eq!(split_budget(8, 1), 8);
        assert_eq!(split_budget(8, 2), 4);
        assert_eq!(split_budget(8, 3), 2);
        assert_eq!(split_budget(2, 8), 1);
        assert_eq!(split_budget(0, 0), 1);
    }

    #[test]
    fn parallel_map_min_fans_out_small_heavy_inputs() {
        // 4 items is below the default threshold but above an explicit one.
        let items = [10u32, 20, 30, 40];
        for workers in [1, 2, 8] {
            assert_eq!(
                parallel_map_min(&items, workers, 2, |i, &v| v + i as u32),
                vec![10, 21, 32, 43],
                "workers={workers}"
            );
        }
        assert!(parallel_map_min(&[] as &[u32], 8, 2, |_, &v| v).is_empty());
    }

    #[test]
    fn parallel_chunks_cover_items_in_order_with_offsets() {
        let items: Vec<u32> = (0..100).collect();
        for workers in [1, 2, 3, 8] {
            let chunks =
                parallel_chunks(&items, workers, 2, |start, slice| (start, slice.to_vec()));
            // Chunks are contiguous, ordered, and cover every item once.
            let mut rebuilt = Vec::new();
            for (start, slice) in &chunks {
                assert_eq!(*start, rebuilt.len());
                rebuilt.extend_from_slice(slice);
            }
            assert_eq!(rebuilt, items, "workers={workers}");
        }
    }

    #[test]
    fn parallel_chunks_stateful_pins_states_and_covers_items() {
        let items: Vec<u32> = (0..100).collect();
        for nstates in [1usize, 2, 3, 8] {
            // Each state counts the items its chunk saw, twice over, so the
            // second call must land on already-warm (non-zero) counters.
            let mut states = vec![0u64; nstates];
            for round in 1..=2u64 {
                let chunks =
                    parallel_chunks_stateful(&items, &mut states, 2, |start, state, slice| {
                        *state += slice.len() as u64;
                        (start, slice.to_vec())
                    });
                let mut rebuilt = Vec::new();
                for (start, slice) in &chunks {
                    assert_eq!(*start, rebuilt.len());
                    rebuilt.extend_from_slice(slice);
                }
                assert_eq!(rebuilt, items, "states={nstates}");
                let total: u64 = states.iter().sum();
                assert_eq!(total, round * items.len() as u64, "states={nstates}");
            }
        }
        // Below the serial threshold everything runs inline on states[0].
        let mut states = vec![0u64; 4];
        let out = parallel_chunks_stateful(&[7u32], &mut states, 2, |start, state, slice| {
            *state += 1;
            (start, slice.len())
        });
        assert_eq!(out, vec![(0, 1)]);
        assert_eq!(states, vec![1, 0, 0, 0]);
    }

    proptest! {
        #[test]
        fn parallel_chunks_stateful_matches_parallel_chunks(
            len in 0usize..40,
            nstates in 1usize..12,
            min_items in 0usize..12,
        ) {
            let items: Vec<u64> = (0..len as u64).collect();
            let plain = parallel_chunks(&items, nstates, min_items, |start, slice| {
                (start, slice.to_vec())
            });
            let mut states = vec![(); nstates];
            let stateful =
                parallel_chunks_stateful(&items, &mut states, min_items, |start, _, slice| {
                    (start, slice.to_vec())
                });
            prop_assert_eq!(stateful, plain);
        }
    }

    #[test]
    fn lookup_backward_many_fan_out_is_deterministic_in_input_order() {
        // The batched lookup paths fan queries and scan joins across these
        // helpers; whatever the worker count, the outcomes must come back in
        // input order with identical contents — for an indexed strategy
        // (per-worker shards with their own caches) and for a
        // mismatched-direction strategy (shared scan, parallel join).
        use crate::datastore::OpDatastore;
        use crate::model::StorageStrategy;
        use subzero_array::{CellSet, Coord, Shape};
        use subzero_engine::{OpMeta, RegionPair};

        struct NoopOp;
        impl subzero_engine::Operator for NoopOp {
            fn name(&self) -> &str {
                "noop"
            }
            fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
                input_shapes[0]
            }
            fn run(
                &self,
                inputs: &[subzero_array::ArrayRef],
                _m: &[subzero_engine::LineageMode],
                _s: &mut dyn subzero_engine::LineageSink,
            ) -> subzero_array::Array {
                (*inputs[0]).clone()
            }
        }

        let shape = Shape::d2(16, 16);
        let meta = OpMeta::new(vec![shape], shape);
        let pairs: Vec<RegionPair> = (0..16u32)
            .map(|i| RegionPair::Full {
                outcells: vec![Coord::d2(i % 16, i / 4)],
                incells: vec![vec![Coord::d2(15 - i % 16, i % 4)]],
            })
            .collect();
        let queries: Vec<CellSet> = (0..6u32)
            .map(|i| {
                CellSet::from_coords(
                    shape,
                    [Coord::d2(i, 0), Coord::d2(i + 1, 1), Coord::d2(0, 0)],
                )
            })
            .collect();
        let refs: Vec<&CellSet> = queries.iter().collect();

        for strategy in [
            StorageStrategy::full_one(),
            StorageStrategy::full_one_forward(), // backward query => scan
        ] {
            let mut reference: Option<Vec<Vec<Coord>>> = None;
            for workers in [1usize, 2, 8] {
                let mut ds = OpDatastore::in_memory("t", strategy, &meta);
                ds.store_batch(&pairs, workers);
                ds.set_workers(workers);
                let outs = ds.lookup_backward_many(&refs, 0, &NoopOp, &meta);
                assert_eq!(outs.len(), refs.len());
                let results: Vec<Vec<Coord>> = outs.iter().map(|o| o.result.to_coords()).collect();
                // Query i's outcome sits at position i: its covered cells
                // are a subset of exactly that query's cells.
                for (out, q) in outs.iter().zip(&queries) {
                    for c in out.covered.to_coords() {
                        assert!(q.contains(&c), "outcome out of input order");
                    }
                }
                match &reference {
                    None => reference = Some(results),
                    Some(expected) => assert_eq!(
                        &results, expected,
                        "{strategy} results differ at workers={workers}"
                    ),
                }
            }
        }
    }
}
