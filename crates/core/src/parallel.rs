//! Scoped worker-thread helpers for the batched ingestion pipeline.
//!
//! The capture hot path is lock-free by construction: work is split into
//! disjoint shards (a chunk of a batch to encode, or one per-operator
//! datastore to flush) and each shard is owned by exactly one scoped thread
//! for the duration of the call.  On single-core hosts (`workers <= 1`) every
//! helper degrades to a plain serial loop with zero thread overhead.

/// Default worker count: the host's available parallelism, capped so a wide
/// machine does not spawn more encode threads than a batch can feed.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Minimum number of items before `parallel_map` spawns threads; below this
/// the spawn overhead outweighs the encode work.
const PARALLEL_MIN_ITEMS: usize = 64;

/// Maps `f` over `items`, preserving order, using up to `workers` scoped
/// threads.  Runs serially when `workers <= 1` or the input is small.
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if workers <= 1 || items.len() < PARALLEL_MIN_ITEMS {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(ci * chunk + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("encode worker panicked"))
            .collect()
    })
}

/// Runs `f` once per item with exclusive access, one scoped thread per item
/// when `parallel` is set (used to flush the independent per-operator
/// datastore shards concurrently).
pub fn for_each_mut<T, F>(items: &mut [T], parallel: bool, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    if !parallel || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (i, item) in items.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move || f(i, item));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        for workers in [1, 2, 5] {
            let out = parallel_map(&items, workers, |i, &v| (i as u32, v * 2));
            assert_eq!(out.len(), 1000);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx as usize, i);
                assert_eq!(*doubled, items[i] * 2);
            }
        }
    }

    #[test]
    fn parallel_map_small_inputs_stay_serial() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 8, |_, &v| v + 1), vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &v| v).is_empty());
    }

    #[test]
    fn for_each_mut_touches_every_item() {
        for parallel in [false, true] {
            let mut items = vec![0u64; 5];
            for_each_mut(&mut items, parallel, |i, v| *v = i as u64 + 10);
            assert_eq!(items, vec![10, 11, 12, 13, 14]);
        }
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
        assert!(default_workers() <= 8);
    }
}
