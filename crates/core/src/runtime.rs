//! The lineage capture runtime.
//!
//! [`Runtime`] is SubZero's implementation of the workflow executor's
//! [`LineageCollector`] hook: as operators run, it receives their region
//! pairs, routes them to one [`OpDatastore`] per assigned storage strategy,
//! and gathers the per-operator statistics (pair counts, fanin/fanout,
//! capture time, bytes) that the optimizer's cost model consumes.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use subzero_engine::executor::{CaptureError, LineageCollector, OpExecution};
use subzero_engine::{LineageMode, OpId, OperatorExt, RegionBatch, RegionPair, Workflow};
use subzero_store::failpoint;
use subzero_store::kv::{FileBackend, KvBackend, MemBackend};
use subzero_store::wal::{recover_dir, RecoveryReport, WalRecord, WriteAheadLog};

use crate::capture::{CaptureConfig, CaptureMode, CapturePipeline, OverflowPolicy, Shard};
use crate::datastore::OpDatastore;
use crate::model::{LineageStrategy, StorageStrategy};
use crate::parallel;

pub use subzero_engine::operator::OperatorExt as _;

/// How the runtime hands captured region pairs to the datastores.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Batch-at-a-time ingestion (the default): whole [`RegionBatch`]es are
    /// encoded and stored through [`OpDatastore::store_batch`], with entry
    /// encoding fanned out across worker threads and one group flush per
    /// batch and datastore.
    #[default]
    Batched,
    /// The legacy reference path: every pair goes through the synchronous
    /// `store_pair` chain one at a time.  Kept for parity testing and for the
    /// ingestion benchmarks' baseline.
    PerPair,
}

/// Per-operator lineage statistics gathered during capture.
#[derive(Clone, Debug, Default)]
pub struct OperatorLineageStats {
    /// Operator name.
    pub op_name: String,
    /// Number of region pairs emitted.
    pub pairs: u64,
    /// Total output cells across pairs.
    pub out_cells: u64,
    /// Total input cells across pairs (all inputs).
    pub in_cells: u64,
    /// Total payload bytes across payload pairs.
    pub payload_bytes: u64,
    /// Operator execution time (excluding capture).
    pub exec_time: Duration,
    /// Time spent encoding and storing lineage for this operator.
    pub capture_time: Duration,
}

impl OperatorLineageStats {
    /// Average number of input cells per region pair ("fanin").
    pub fn avg_fanin(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.in_cells as f64 / self.pairs as f64
        }
    }

    /// Average number of output cells per region pair ("fanout").
    pub fn avg_fanout(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.out_cells as f64 / self.pairs as f64
        }
    }
}

/// Aggregate capture statistics across a whole run.
#[derive(Clone, Debug, Default)]
pub struct CaptureStats {
    /// Lineage bytes stored (hash entries plus spatial indexes).
    pub bytes: usize,
    /// Total time spent capturing (encoding + storing) lineage.
    pub capture_time: Duration,
    /// Total operator execution time.
    pub exec_time: Duration,
    /// Number of region pairs stored across all operators and strategies.
    pub pairs: u64,
}

/// The SubZero lineage capture runtime.
pub struct Runtime {
    storage_dir: Option<PathBuf>,
    strategy: LineageStrategy,
    ingest_mode: IngestMode,
    /// How captured batches reach the datastores: on the executor thread
    /// ([`CaptureMode::Sync`], the parity reference) or through the bounded
    /// queue and flusher pool ([`CaptureMode::Async`]).
    capture_mode: CaptureMode,
    /// Queue depth, flusher count and overflow policy of the async pipeline.
    capture_config: CaptureConfig,
    /// The running flusher pool (started lazily on the first async capture).
    pipeline: Option<CapturePipeline>,
    /// Shards owned by the flusher side while the pipeline runs; harvested
    /// back into `datastores` by the flush barrier.
    pending: HashMap<(u64, OpId), Arc<Shard>>,
    /// The first flusher failure, kept sticky so every later engine call
    /// reports it instead of silently storing partial lineage.
    capture_failed: Option<CaptureError>,
    /// Batches shed by *retired* pipelines under
    /// [`OverflowPolicy::DropNewest`]; the live pipeline's count is added on
    /// read so the total survives shutdown and reconfiguration.
    dropped_total: u64,
    /// Worker threads available to encode a batch (and to flush independent
    /// datastore shards concurrently).  1 means fully serial.
    workers: usize,
    /// Datastores keyed by `(run_id, op_id)`; one per assigned strategy that
    /// stores pairs.  Each datastore is an independent shard: during a flush
    /// it is owned by exactly one thread, so the hot path takes no locks.
    datastores: HashMap<(u64, OpId), Vec<OpDatastore>>,
    /// Capture statistics keyed by `(run_id, op_id)`.
    stats: HashMap<(u64, OpId), OperatorLineageStats>,
    /// The storage directory's write-ahead log (`None` in memory).  Batches
    /// land in the `.kv` files as *staged* bytes; [`commit_run`]
    /// (Runtime::commit_run) publishes them with a prepare/commit record
    /// pair, and [`on_disk`](Runtime::on_disk) replays the log to roll any
    /// uncommitted staging back.
    wal: Option<WriteAheadLog>,
    /// What [`on_disk`](Runtime::on_disk) recovery had to do (for tests and
    /// operational visibility; `None` in memory).
    recovery: Option<RecoveryReport>,
}

impl Runtime {
    /// A runtime whose datastores live in memory.
    pub fn in_memory() -> Self {
        Runtime {
            storage_dir: None,
            strategy: LineageStrategy::new(),
            ingest_mode: IngestMode::default(),
            capture_mode: CaptureMode::default(),
            capture_config: CaptureConfig::default(),
            pipeline: None,
            pending: HashMap::new(),
            capture_failed: None,
            dropped_total: 0,
            workers: parallel::default_workers(),
            datastores: HashMap::new(),
            stats: HashMap::new(),
            wal: None,
            recovery: None,
        }
    }

    /// A runtime whose datastores persist under `dir`.
    ///
    /// Opening is also recovery: the directory's write-ahead log is replayed
    /// and every `.kv` file rolled back to its last committed length — a run
    /// that was never published by [`commit_run`](Runtime::commit_run)
    /// leaves nothing behind.  A directory without a log (first use, or one
    /// written before the transactional tier) is adopted as-is.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).expect("create lineage storage directory");
        let (wal, report) = recover_dir(&dir, None).expect("recover lineage storage directory");
        Runtime {
            storage_dir: Some(dir),
            wal: Some(wal),
            recovery: Some(report),
            ..Self::in_memory()
        }
    }

    /// What opening the storage directory had to recover (`None` in memory).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The storage directory's write-ahead log (`None` in memory).
    pub fn wal(&self) -> Option<&WriteAheadLog> {
        self.wal.as_ref()
    }

    /// Replaces the workflow-level lineage strategy.  Takes effect for
    /// subsequent executions (the paper's operators "initially generate
    /// black-box lineage but over time change strategy through
    /// optimization").
    pub fn set_strategy(&mut self, strategy: LineageStrategy) {
        self.strategy = strategy;
    }

    /// The current lineage strategy.
    pub fn strategy(&self) -> &LineageStrategy {
        &self.strategy
    }

    /// Selects how captured pairs reach the datastores (batched by default).
    pub fn set_ingest_mode(&mut self, mode: IngestMode) {
        self.ingest_mode = mode;
    }

    /// The current ingestion mode.
    pub fn ingest_mode(&self) -> IngestMode {
        self.ingest_mode
    }

    /// Selects whether capture runs on the executor thread or through the
    /// async pipeline.  Switching back to [`CaptureMode::Sync`] drains and
    /// shuts down a running pipeline first (best-effort; a flusher failure
    /// stays sticky and surfaces on the next fallible call).
    pub fn set_capture_mode(&mut self, mode: CaptureMode) {
        if mode == CaptureMode::Sync && self.pipeline.is_some() {
            let _ = self.shutdown_capture();
        }
        self.capture_mode = mode;
    }

    /// The current capture mode.
    pub fn capture_mode(&self) -> CaptureMode {
        self.capture_mode
    }

    /// Replaces the async pipeline configuration (queue depth, flusher
    /// count, overflow policy).  A running pipeline is drained and restarted
    /// lazily with the new configuration on the next async capture.
    pub fn set_capture_config(&mut self, config: CaptureConfig) {
        if self.pipeline.is_some() {
            let _ = self.shutdown_capture();
        }
        self.capture_config = config;
    }

    /// The async pipeline configuration.
    pub fn capture_config(&self) -> CaptureConfig {
        self.capture_config
    }

    /// Sets the capture queue depth (see [`CaptureConfig::queue_depth`]).
    pub fn set_capture_queue_depth(&mut self, depth: usize) {
        let config = CaptureConfig {
            queue_depth: depth,
            ..self.capture_config
        };
        self.set_capture_config(config);
    }

    /// Sets the number of background flusher threads.
    pub fn set_capture_flushers(&mut self, flushers: usize) {
        let config = CaptureConfig {
            flushers,
            ..self.capture_config
        };
        self.set_capture_config(config);
    }

    /// Sets what a full capture queue does with the next batch.
    pub fn set_capture_policy(&mut self, policy: OverflowPolicy) {
        let config = CaptureConfig {
            policy,
            ..self.capture_config
        };
        self.set_capture_config(config);
    }

    /// Batches shed under [`OverflowPolicy::DropNewest`] over this runtime's
    /// lifetime, across pipeline restarts (0 under the default blocking
    /// policy).  Callers auditing shed lineage — e.g. to decide whether
    /// queries must fall back to re-execution — see the full count even
    /// after the pipeline was shut down or reconfigured.
    pub fn dropped_batches(&self) -> u64 {
        self.dropped_total
            + self
                .pipeline
                .as_ref()
                .map(CapturePipeline::dropped_batches)
                .unwrap_or(0)
    }

    /// Flush barrier: blocks until every batch staged with the async
    /// pipeline has been applied to its datastores, harvests the shards back
    /// into the runtime, and reports any flusher failure.  A no-op in sync
    /// mode (beyond re-reporting a sticky failure).
    pub fn flush_capture(&mut self) -> Result<(), CaptureError> {
        if self.pipeline.is_some() {
            self.quiesce_capture()
        } else {
            match &self.capture_failed {
                Some(e) => Err(e.clone()),
                None => Ok(()),
            }
        }
    }

    /// Drains the async pipeline (flush barrier + harvest) and joins its
    /// flusher threads.  The next async capture starts a fresh pipeline.
    pub fn shutdown_capture(&mut self) -> Result<(), CaptureError> {
        let result = self.flush_capture();
        // Roll the retiring pipeline's shed count into the lifetime total
        // before dropping it, then let Drop close the queue and join the
        // flushers; the barrier above already drained it, so the join is
        // immediate.
        if let Some(pipeline) = &self.pipeline {
            self.dropped_total += pipeline.dropped_batches();
        }
        self.pipeline = None;
        result
    }

    /// Waits for the pipeline to go idle and moves every flusher-side shard
    /// back into `datastores`, charging flusher time to the owning
    /// operator's capture statistics.  Harvests even after a failure so
    /// whatever was stored stays inspectable; the failure is reported and
    /// kept sticky.
    fn quiesce_capture(&mut self) -> Result<(), CaptureError> {
        let result = match &self.pipeline {
            Some(pipeline) => pipeline.flush(),
            None => Ok(()),
        };
        for (key, shard) in self.pending.drain() {
            let mut state = shard.lock();
            let stores = std::mem::take(&mut state.stores);
            let flush_time = std::mem::replace(&mut state.flush_time, Duration::ZERO);
            drop(state);
            if !stores.is_empty() {
                self.datastores.insert(key, stores);
            }
            if let Some(stats) = self.stats.get_mut(&key) {
                stats.capture_time += flush_time;
            }
        }
        if let Err(e) = result {
            self.capture_failed = Some(e.clone());
            return Err(e);
        }
        match &self.capture_failed {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Sets the number of worker threads used to encode batches (clamped to
    /// at least 1; 1 disables threading entirely).  A running async pipeline
    /// is drained and restarted lazily so its flushers pick up the new
    /// per-flusher encode budget, exactly as the capture-config setters do.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
        if self.pipeline.is_some() {
            let _ = self.shutdown_capture();
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The storage strategies assigned to one operator (empty when the
    /// operator runs under the default black-box + mapping behaviour).
    pub fn strategies_for(&self, op_id: OpId) -> Vec<StorageStrategy> {
        self.strategy
            .get(op_id)
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// The datastores holding lineage captured for `(run_id, op_id)`.
    ///
    /// In async capture mode this first waits for the pipeline to go idle
    /// and harvests the flusher-side shards, so callers always observe fully
    /// applied lineage.
    pub fn datastores(&mut self, run_id: u64, op_id: OpId) -> &mut [OpDatastore] {
        if self.pipeline.is_some() {
            // Failures stay sticky and surface from the next fallible call.
            let _ = self.quiesce_capture();
        }
        self.datastores
            .get_mut(&(run_id, op_id))
            .map(|v| v.as_mut_slice())
            .unwrap_or(&mut [])
    }

    /// Whether any materialised lineage exists for `(run_id, op_id)`
    /// (including lineage still owned by the async pipeline's flushers).
    pub fn has_lineage(&self, run_id: u64, op_id: OpId) -> bool {
        if self
            .datastores
            .get(&(run_id, op_id))
            .is_some_and(|v| !v.is_empty())
        {
            return true;
        }
        self.pending
            .get(&(run_id, op_id))
            .is_some_and(|shard| !shard.lock().stores.is_empty())
    }

    /// Per-operator capture statistics for a run.
    pub fn op_stats(&self, run_id: u64, op_id: OpId) -> Option<&OperatorLineageStats> {
        self.stats.get(&(run_id, op_id))
    }

    /// All per-operator statistics for a run.
    pub fn run_stats(&self, run_id: u64) -> HashMap<OpId, &OperatorLineageStats> {
        self.stats
            .iter()
            .filter(|((r, _), _)| *r == run_id)
            .map(|((_, op), s)| (*op, s))
            .collect()
    }

    /// Aggregate capture statistics for a run.
    ///
    /// Shards still owned by the async pipeline are counted through their
    /// locks; while flushers are actively applying batches those numbers are
    /// a consistent-but-partial snapshot (call
    /// [`flush_capture`](Runtime::flush_capture) first for final figures).
    pub fn capture_stats(&self, run_id: u64) -> CaptureStats {
        let mut agg = CaptureStats::default();
        for ((r, op), stats) in &self.stats {
            if *r != run_id {
                continue;
            }
            agg.capture_time += stats.capture_time;
            agg.exec_time += stats.exec_time;
            if let Some(stores) = self.datastores.get(&(*r, *op)) {
                for ds in stores {
                    agg.bytes += ds.bytes_used();
                    agg.pairs += ds.pairs_stored();
                }
            } else if let Some(shard) = self.pending.get(&(*r, *op)) {
                let state = shard.lock();
                for ds in &state.stores {
                    agg.bytes += ds.bytes_used();
                    agg.pairs += ds.pairs_stored();
                }
                agg.capture_time += state.flush_time;
            }
        }
        agg
    }

    /// Total lineage bytes stored for a run.
    pub fn bytes_for_run(&self, run_id: u64) -> usize {
        self.capture_stats(run_id).bytes
    }

    /// Finishes capture for a run: builds every datastore's deferred spatial
    /// index and flushes its hash database, charging the time to the owning
    /// operator's capture overhead.  Lookups do this lazily, so calling it is
    /// optional — but benchmarks must, or the first query per datastore gets
    /// billed for the index build.  Returns the total time spent.
    pub fn finish_run(&mut self, run_id: u64) -> Duration {
        if self.pipeline.is_some() {
            // Deferred stores must land before the indexes are built;
            // failures stay sticky and surface from the next fallible call.
            let _ = self.quiesce_capture();
        }
        let mut total = Duration::ZERO;
        for ((r, op), stores) in self.datastores.iter_mut() {
            if *r != run_id {
                continue;
            }
            let start = Instant::now();
            for ds in stores.iter_mut() {
                ds.finish_ingest();
            }
            let elapsed = start.elapsed();
            total += elapsed;
            if let Some(stats) = self.stats.get_mut(&(*r, *op)) {
                stats.capture_time += elapsed;
            }
        }
        total
    }

    /// Publishes everything a run has captured: finishes ingest, fsyncs
    /// every touched `.kv` log, and writes the prepare + commit record pair
    /// that makes the run's bytes survive [`on_disk`](Runtime::on_disk)
    /// recovery.  All-or-nothing: a crash anywhere before the commit record
    /// is durable rolls the whole run back on reopen.  Returns the committed
    /// transaction id (0 for in-memory runtimes, which have nothing to
    /// publish).
    pub fn commit_run(&mut self, run_id: u64) -> std::io::Result<u64> {
        self.finish_run(run_id);
        let Some(wal) = self.wal.as_mut() else {
            return Ok(0);
        };
        let mut files = Vec::new();
        for ((r, _), stores) in self.datastores.iter_mut() {
            if *r != run_id {
                continue;
            }
            for ds in stores.iter_mut() {
                ds.sync()?;
                if let Some(file) = ds.commit_file() {
                    files.push(file);
                }
            }
        }
        let txn = wal.next_txn();
        failpoint::crash_if_armed(failpoint::PRE_PREPARE);
        wal.append_record(WalRecord::Prepare { txn, files })?;
        wal.sync()?;
        failpoint::crash_if_armed(failpoint::PRE_COMMIT);
        // The commit record is the publish point (a mid-write crash is
        // injected inside `append_record` when `commit.mid-commit` is armed).
        wal.append_record(WalRecord::Commit { txn })?;
        wal.sync()?;
        failpoint::crash_if_armed(failpoint::POST_COMMIT);
        // Fold the decision into the baseline so replay stays bounded: the
        // log never carries more than one checkpoint record per live file
        // plus the current run's prepare/commit, no matter how many runs
        // this directory has committed.
        let committed = wal.committed_txns();
        let baseline = wal.fold_committed(&|t| committed.contains(&t));
        let next = wal.next_txn();
        wal.checkpoint(&baseline, next, Vec::new())?;
        Ok(txn)
    }

    /// Folds superseded records (e.g. committed `merge_append_batch` delta
    /// chains) out of a run's `.kv` logs and re-checkpoints the write-ahead
    /// log with the dense lengths.  Returns total bytes reclaimed.
    ///
    /// Only fully published stores are touched: a store whose physical log
    /// is longer than its committed length still carries staged bytes, and
    /// compacting it would fold uncommitted data into the committed image.
    pub fn compact_run(&mut self, run_id: u64) -> std::io::Result<u64> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(0);
        };
        let baseline: HashMap<String, u64> = wal.fold_committed(&|_| true).into_iter().collect();
        let mut reclaimed = 0u64;
        let mut compacted: Vec<(String, u64)> = Vec::new();
        for ((r, _), stores) in self.datastores.iter_mut() {
            if *r != run_id {
                continue;
            }
            for ds in stores.iter_mut() {
                let Some((name, len)) = ds.commit_file() else {
                    continue;
                };
                if baseline.get(&name) != Some(&len) {
                    continue;
                }
                let freed = ds.compact()?;
                if freed > 0 {
                    reclaimed += freed;
                    let (name, dense_len) = ds.commit_file().expect("still file-backed");
                    compacted.push((name, dense_len));
                }
            }
        }
        if reclaimed > 0 {
            let mut baseline = baseline;
            for (name, len) in compacted {
                baseline.insert(name, len);
            }
            let mut files: Vec<(String, u64)> = baseline.into_iter().collect();
            files.sort_unstable();
            let next = wal.next_txn();
            wal.checkpoint(&files, next, Vec::new())?;
        }
        Ok(reclaimed)
    }

    /// Drops all lineage stored for a run (used by the benchmark harness to
    /// bound memory between strategy configurations).
    pub fn clear_run(&mut self, run_id: u64) {
        if self.pipeline.is_some() {
            let _ = self.quiesce_capture();
        }
        self.datastores.retain(|(r, _), _| *r != run_id);
        self.stats.retain(|(r, _), _| *r != run_id);
    }

    /// Allocates one datastore per pair-storing strategy of an operator.
    fn make_stores(
        &self,
        exec: &OpExecution<'_>,
        strategies: &[StorageStrategy],
    ) -> Vec<OpDatastore> {
        let mut stores = Vec::with_capacity(strategies.len());
        for s in strategies {
            let name = format!("run{}_op{}_{}", exec.run_id, exec.op_id, s.db_suffix());
            let backend = self.make_backend(&name);
            let mut ds = OpDatastore::new(name, *s, exec.meta, backend);
            // Batched lookups fan out over the same worker budget the
            // capture pipeline was given.
            ds.set_workers(self.workers);
            stores.push(ds);
        }
        stores
    }

    /// The synchronous store path: encode and store on the calling
    /// (executor) thread, exactly as before async capture existed.
    fn store_sync(
        &mut self,
        key: (u64, OpId),
        exec: &OpExecution<'_>,
        strategies: &[StorageStrategy],
        batches: &[RegionBatch],
    ) {
        if !self.datastores.contains_key(&key) {
            let stores = self.make_stores(exec, strategies);
            self.datastores.insert(key, stores);
        }
        let stores = self.datastores.get_mut(&key).expect("just inserted");
        match self.ingest_mode {
            IngestMode::Batched => {
                // Each datastore is an independent shard; with spare
                // workers and several shards, flush them concurrently and
                // split the worker budget, otherwise give the single
                // shard all encode workers.
                let shard_parallel = self.workers > 1 && stores.len() > 1;
                let shard_workers = if shard_parallel {
                    parallel::split_budget(self.workers, stores.len())
                } else {
                    self.workers
                };
                for batch in batches {
                    parallel::for_each_mut(stores, shard_parallel, |_, ds| {
                        ds.store_batch(&batch.pairs, shard_workers);
                    });
                }
            }
            IngestMode::PerPair => {
                for batch in batches {
                    for pair in &batch.pairs {
                        for ds in stores.iter_mut() {
                            ds.store_pair(pair);
                        }
                    }
                }
            }
        }
    }

    /// The asynchronous hand-off: create the operator's capture shard on
    /// first touch, then stage every batch on the bounded queue.  The
    /// executor thread pays only for backend creation and the enqueue (plus
    /// any backpressure wait); flusher threads do the encode + store.
    fn stage_async(
        &mut self,
        key: (u64, OpId),
        exec: &OpExecution<'_>,
        strategies: &[StorageStrategy],
        batches: Vec<RegionBatch>,
    ) -> Result<(), CaptureError> {
        if self.pipeline.is_none() {
            // Flushers run concurrently with each other; split the encode
            // worker budget so the pool doesn't oversubscribe the host.
            let store_workers =
                parallel::split_budget(self.workers, self.capture_config.flushers.max(1));
            self.pipeline = Some(CapturePipeline::start(self.capture_config, store_workers));
        }
        if !self.pending.contains_key(&key) {
            // A repeated collection for a key whose shard was already
            // harvested resumes capturing into the same datastores (exactly
            // like the sync path reusing its `datastores` entry) instead of
            // allocating a second set that a later harvest would clobber.
            let stores = match self.datastores.remove(&key) {
                Some(stores) => stores,
                None => self.make_stores(exec, strategies),
            };
            self.pending.insert(key, Arc::new(Shard::new(stores)));
        }
        let shard = Arc::clone(self.pending.get(&key).expect("just inserted"));
        let pipeline = self.pipeline.as_ref().expect("pipeline just started");
        for batch in batches {
            // Sequence numbers come from the shard, not this call, so a
            // second collection for the same key continues where the first
            // stopped rather than re-issuing already-applied numbers.
            let seq = shard.ticket();
            if let Err(e) = pipeline.submit(&shard, seq, batch) {
                self.capture_failed = Some(e.clone());
                return Err(e);
            }
        }
        Ok(())
    }

    fn make_backend(&self, name: &str) -> Box<dyn KvBackend> {
        match &self.storage_dir {
            None => Box::new(MemBackend::new()),
            Some(dir) => {
                let file = dir.join(format!("{}.kv", sanitize(name)));
                Box::new(FileBackend::open(&file).expect("open lineage database file"))
            }
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl LineageCollector for Runtime {
    fn modes_for(&self, workflow: &Workflow, op_id: OpId) -> Vec<LineageMode> {
        let Ok(node) = workflow.node(op_id) else {
            return vec![LineageMode::Blackbox];
        };
        let mut modes: Vec<LineageMode> = self
            .strategies_for(op_id)
            .iter()
            .map(|s| s.mode)
            .filter(|m| m.stores_pairs())
            .filter(|m| node.operator.supports(*m))
            .collect();
        modes.sort_unstable();
        modes.dedup();
        if modes.is_empty() {
            vec![LineageMode::Blackbox]
        } else {
            modes
        }
    }

    fn collect_batches(
        &mut self,
        exec: &OpExecution<'_>,
        batches: Vec<RegionBatch>,
    ) -> Result<(), CaptureError> {
        if let Some(e) = &self.capture_failed {
            // A flusher failed earlier; refuse further capture so the run
            // cannot silently continue with holes in its stored lineage.
            return Err(e.clone());
        }
        let start = Instant::now();
        let key = (exec.run_id, exec.op_id);

        // Record execution statistics even for operators with no pairs;
        // pair statistics are aggregated per batch, not per pair.
        let stats = self
            .stats
            .entry(key)
            .or_insert_with(|| OperatorLineageStats {
                op_name: exec.op_name.to_string(),
                ..Default::default()
            });
        stats.exec_time += exec.elapsed;
        for batch in &batches {
            let mut agg = (0u64, 0u64, 0u64, 0u64); // pairs, out, in, payload
            for pair in &batch.pairs {
                agg.0 += 1;
                agg.1 += pair.outcells().len() as u64;
                match pair {
                    RegionPair::Full { incells, .. } => {
                        agg.2 += incells.iter().map(Vec::len).sum::<usize>() as u64;
                    }
                    RegionPair::Payload { payload, .. } => {
                        agg.3 += payload.len() as u64;
                    }
                }
            }
            stats.pairs += agg.0;
            stats.out_cells += agg.1;
            stats.in_cells += agg.2;
            stats.payload_bytes += agg.3;
        }

        // Route batches to one datastore per pair-storing strategy.
        let strategies: Vec<StorageStrategy> = self
            .strategies_for(exec.op_id)
            .into_iter()
            .filter(|s| s.stores_pairs())
            .collect();
        let total_pairs: usize = batches.iter().map(RegionBatch::len).sum();
        if !strategies.is_empty() && total_pairs > 0 {
            // The async pipeline serves the batched path only; the per-pair
            // reference path always stores synchronously.
            let use_async =
                self.capture_mode == CaptureMode::Async && self.ingest_mode == IngestMode::Batched;
            if use_async {
                self.stage_async(key, exec, &strategies, batches)?;
            } else {
                self.store_sync(key, exec, &strategies, &batches);
            }
        }

        // Charge the collect time spent on the executor thread (routing +
        // encoding + storing for sync capture; routing + queue hand-off for
        // async capture — that difference is the point of the pipeline) to
        // this operator's capture overhead.
        let elapsed = start.elapsed();
        if let Some(stats) = self.stats.get_mut(&key) {
            stats.capture_time += elapsed;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("datastores", &self.datastores.len())
            .field("storage_dir", &self.storage_dir)
            .field("capture_mode", &self.capture_mode)
            .field("pending_shards", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as StdHashMap;
    use std::sync::Arc;
    use subzero_array::{Array, Coord, Shape};
    use subzero_engine::ops::{Elementwise1, UnaryKind};
    use subzero_engine::{Engine, Workflow};

    fn workflow() -> Arc<Workflow> {
        let mut b = Workflow::builder("wf");
        let a = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))), "x");
        let _c = b.add_unary(Arc::new(Elementwise1::new(UnaryKind::Offset(1.0))), a);
        Arc::new(b.build().unwrap())
    }

    fn externals() -> StdHashMap<String, Array> {
        let mut m = StdHashMap::new();
        m.insert("x".to_string(), Array::filled(Shape::d2(4, 4), 1.0));
        m
    }

    #[test]
    fn modes_follow_strategy_and_operator_support() {
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        assert_eq!(
            rt.modes_for(&wf, 0),
            vec![LineageMode::Blackbox],
            "no strategy => black-box"
        );
        let mut strategy = LineageStrategy::new();
        strategy.set(
            0,
            vec![StorageStrategy::full_one(), StorageStrategy::full_many()],
        );
        strategy.set(1, vec![StorageStrategy::pay_one()]);
        rt.set_strategy(strategy);
        assert_eq!(rt.modes_for(&wf, 0), vec![LineageMode::Full]);
        // Elementwise operators do not support Pay, so the mode falls back to
        // black-box rather than asking for something the operator cannot do.
        assert_eq!(rt.modes_for(&wf, 1), vec![LineageMode::Blackbox]);
    }

    #[test]
    fn capture_stores_pairs_per_strategy() {
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        let mut strategy = LineageStrategy::new();
        strategy.set(
            0,
            vec![
                StorageStrategy::full_one(),
                StorageStrategy::full_one_forward(),
            ],
        );
        rt.set_strategy(strategy);

        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();

        assert!(rt.has_lineage(run.run_id, 0));
        assert!(!rt.has_lineage(run.run_id, 1));
        assert_eq!(rt.datastores(run.run_id, 0).len(), 2);
        let stats = rt.op_stats(run.run_id, 0).unwrap();
        assert_eq!(stats.pairs, 16, "one identity pair per cell");
        assert_eq!(stats.out_cells, 16);
        assert_eq!(stats.in_cells, 16);
        assert!((stats.avg_fanin() - 1.0).abs() < 1e-9);
        assert!((stats.avg_fanout() - 1.0).abs() < 1e-9);

        let agg = rt.capture_stats(run.run_id);
        assert!(agg.bytes > 0);
        assert_eq!(agg.pairs, 32, "16 pairs stored under each of 2 strategies");
        assert!(rt.bytes_for_run(run.run_id) > 0);
    }

    #[test]
    fn blackbox_strategy_stores_nothing() {
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        assert!(!rt.has_lineage(run.run_id, 0));
        let agg = rt.capture_stats(run.run_id);
        assert_eq!(agg.bytes, 0);
        assert_eq!(agg.pairs, 0);
        // Execution statistics are still recorded.
        assert!(rt.op_stats(run.run_id, 0).is_some());
    }

    #[test]
    fn clear_run_releases_lineage() {
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        let mut strategy = LineageStrategy::new();
        strategy.set(0, vec![StorageStrategy::full_one()]);
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        assert!(rt.has_lineage(run.run_id, 0));
        rt.clear_run(run.run_id);
        assert!(!rt.has_lineage(run.run_id, 0));
        assert!(rt.op_stats(run.run_id, 0).is_none());
    }

    #[test]
    fn on_disk_runtime_persists_to_files() {
        let dir = std::env::temp_dir().join(format!("subzero-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wf = workflow();
        let mut rt = Runtime::on_disk(&dir);
        let mut strategy = LineageStrategy::new();
        strategy.set(0, vec![StorageStrategy::full_one()]);
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        assert!(rt.has_lineage(run.run_id, 0));
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(!files.is_empty(), "lineage database files were created");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_rolls_back_uncommitted_runs_and_keeps_committed_bytes() {
        let dir = std::env::temp_dir().join(format!("subzero-rt-txn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wf = workflow();
        let committed_run;
        let staged_run;
        {
            let mut rt = Runtime::on_disk(&dir);
            let mut strategy = LineageStrategy::new();
            strategy.set(0, vec![StorageStrategy::full_one()]);
            rt.set_strategy(strategy);
            let mut engine = Engine::new();
            let r1 = engine.execute(&wf, &externals(), &mut rt).unwrap();
            rt.commit_run(r1.run_id).unwrap();
            committed_run = r1.run_id;
            // The checkpoint folded the commit: replay is one baseline
            // record, not a history of the run.
            assert_eq!(rt.wal().unwrap().len(), 1);
            // A second run flushes but never commits — as if the process
            // died after ingest.
            let r2 = engine.execute(&wf, &externals(), &mut rt).unwrap();
            rt.finish_run(r2.run_id);
            staged_run = r2.run_id;
        }
        let committed_files: std::collections::HashMap<String, Vec<u8>> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                let prefix = format!("run{committed_run}_");
                name.starts_with(&prefix)
                    .then(|| (name.clone(), std::fs::read(dir.join(&name)).unwrap()))
            })
            .collect();
        assert!(!committed_files.is_empty());
        let rt = Runtime::on_disk(&dir);
        let report = rt.recovery_report().unwrap();
        assert!(report.deleted > 0, "staged run's files must be rolled back");
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(
                !name.starts_with(&format!("run{staged_run}_")),
                "uncommitted {name} survived recovery"
            );
            if let Some(bytes) = committed_files.get(&name) {
                assert_eq!(
                    &std::fs::read(dir.join(&name)).unwrap(),
                    bytes,
                    "committed {name} must be byte-identical after recovery"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_pair_and_batched_ingest_store_identical_lineage() {
        let wf = workflow();
        let run_with = |mode: IngestMode, batch_size: usize| {
            let mut rt = Runtime::in_memory();
            rt.set_ingest_mode(mode);
            let mut strategy = LineageStrategy::new();
            strategy.set(
                0,
                vec![StorageStrategy::full_one(), StorageStrategy::full_many()],
            );
            rt.set_strategy(strategy);
            let mut engine = Engine::new();
            engine.set_capture_batch_size(batch_size);
            let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
            let snapshots: Vec<_> = rt
                .datastores(run.run_id, 0)
                .iter()
                .map(|ds| ds.snapshot())
                .collect();
            let stats = rt.op_stats(run.run_id, 0).unwrap().clone();
            (snapshots, stats)
        };
        let (reference, ref_stats) = run_with(IngestMode::PerPair, 1);
        for batch_size in [1usize, 5, 4096] {
            let (snapshots, stats) = run_with(IngestMode::Batched, batch_size);
            assert_eq!(snapshots, reference, "batch_size={batch_size}");
            assert_eq!(stats.pairs, ref_stats.pairs);
            assert_eq!(stats.out_cells, ref_stats.out_cells);
            assert_eq!(stats.in_cells, ref_stats.in_cells);
        }
    }

    #[test]
    fn finish_run_builds_indexes_and_charges_capture() {
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        let mut strategy = LineageStrategy::new();
        strategy.set(0, vec![StorageStrategy::full_many()]);
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        let before = rt.op_stats(run.run_id, 0).unwrap().capture_time;
        let elapsed = rt.finish_run(run.run_id);
        let after = rt.op_stats(run.run_id, 0).unwrap().capture_time;
        assert_eq!(after, before + elapsed, "finish time charged to capture");
        // Idempotent: a second call finds nothing staged.
        rt.finish_run(run.run_id);
        // Unknown runs are a no-op.
        assert_eq!(rt.finish_run(999), Duration::ZERO);
    }

    #[test]
    fn worker_and_mode_knobs() {
        let mut rt = Runtime::in_memory();
        assert_eq!(
            rt.ingest_mode(),
            IngestMode::Batched,
            "batched is the default"
        );
        assert!(rt.workers() >= 1);
        rt.set_workers(0);
        assert_eq!(rt.workers(), 1, "worker count clamps to 1");
        rt.set_workers(4);
        assert_eq!(rt.workers(), 4);
        rt.set_ingest_mode(IngestMode::PerPair);
        assert_eq!(rt.ingest_mode(), IngestMode::PerPair);
    }

    /// Reference snapshots of a sync-capture run of `workflow()` with two
    /// strategies on op 0.
    fn sync_reference() -> Vec<Vec<(Vec<u8>, Vec<u8>)>> {
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        let mut strategy = LineageStrategy::new();
        strategy.set(
            0,
            vec![StorageStrategy::full_one(), StorageStrategy::full_many()],
        );
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        rt.datastores(run.run_id, 0)
            .iter()
            .map(|ds| ds.snapshot())
            .collect()
    }

    #[test]
    fn async_capture_matches_sync_byte_for_byte() {
        let reference = sync_reference();
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        rt.set_capture_mode(CaptureMode::Async);
        rt.set_capture_config(CaptureConfig {
            queue_depth: 2,
            flushers: 2,
            policy: OverflowPolicy::Block,
        });
        let mut strategy = LineageStrategy::new();
        strategy.set(
            0,
            vec![StorageStrategy::full_one(), StorageStrategy::full_many()],
        );
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        // Small batches force several queued jobs per shard.
        engine.set_capture_batch_size(3);
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        rt.flush_capture().unwrap();
        let snapshots: Vec<_> = rt
            .datastores(run.run_id, 0)
            .iter()
            .map(|ds| ds.snapshot())
            .collect();
        assert_eq!(snapshots, reference);
    }

    #[test]
    fn datastore_access_harvests_without_explicit_flush() {
        let reference = sync_reference();
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        rt.set_capture_mode(CaptureMode::Async);
        let mut strategy = LineageStrategy::new();
        strategy.set(
            0,
            vec![StorageStrategy::full_one(), StorageStrategy::full_many()],
        );
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        // No flush_capture: the datastore accessor performs the barrier.
        assert!(rt.has_lineage(run.run_id, 0), "pending shards count");
        let snapshots: Vec<_> = rt
            .datastores(run.run_id, 0)
            .iter()
            .map(|ds| ds.snapshot())
            .collect();
        assert_eq!(snapshots, reference);
        let stats = rt.capture_stats(run.run_id);
        assert!(stats.pairs > 0 && stats.bytes > 0);
    }

    #[test]
    fn switching_back_to_sync_drains_the_pipeline() {
        let reference = sync_reference();
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        rt.set_capture_mode(CaptureMode::Async);
        let mut strategy = LineageStrategy::new();
        strategy.set(
            0,
            vec![StorageStrategy::full_one(), StorageStrategy::full_many()],
        );
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        // Drain-on-shutdown: switching modes joins the flushers and harvests.
        rt.set_capture_mode(CaptureMode::Sync);
        assert_eq!(rt.capture_mode(), CaptureMode::Sync);
        let snapshots: Vec<_> = rt
            .datastores(run.run_id, 0)
            .iter()
            .map(|ds| ds.snapshot())
            .collect();
        assert_eq!(snapshots, reference);
    }

    /// Claims one input but emits two incell vectors per pair, which makes
    /// the encoder index a missing input shape and panic — on a background
    /// flusher thread under async capture.
    struct BadArity;

    impl subzero_engine::Operator for BadArity {
        fn name(&self) -> &str {
            "bad-arity"
        }
        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }
        fn supported_modes(&self) -> Vec<LineageMode> {
            vec![LineageMode::Full, LineageMode::Blackbox]
        }
        fn run(
            &self,
            inputs: &[subzero_array::ArrayRef],
            cur_modes: &[LineageMode],
            sink: &mut dyn subzero_engine::LineageSink,
        ) -> Array {
            if cur_modes.contains(&LineageMode::Full) {
                let c = Coord::d2(0, 0);
                sink.lwrite(vec![c], vec![vec![c], vec![c]]);
            }
            (*inputs[0]).clone()
        }
    }

    #[test]
    fn flusher_panic_surfaces_as_error_not_hang() {
        let mut b = Workflow::builder("bad");
        let _op = b.add_source(Arc::new(BadArity), "x");
        let wf = Arc::new(b.build().unwrap());
        let mut rt = Runtime::in_memory();
        rt.set_capture_mode(CaptureMode::Async);
        rt.set_capture_config(CaptureConfig {
            queue_depth: 1,
            flushers: 1,
            policy: OverflowPolicy::Block,
        });
        let mut strategy = LineageStrategy::new();
        strategy.set(0, vec![StorageStrategy::full_many()]);
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        // The first execution may succeed (the panic happens on the flusher
        // after the hand-off) or already observe the failure while staging.
        let first = engine.execute(&wf, &externals(), &mut rt);
        let flush = rt.flush_capture();
        assert!(
            first.is_err() || flush.is_err(),
            "flusher panic must be reported by the barrier"
        );
        // The failure is sticky: the next engine call errors instead of
        // storing lineage with silent holes.
        let err = engine.execute(&wf, &externals(), &mut rt).unwrap_err();
        assert!(
            matches!(err, subzero_engine::executor::EngineError::Capture(_)),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn repeated_async_collections_for_one_operator_accumulate() {
        // The engine collects once per (run, op), but Runtime is a public
        // collector: a second collection for the same key — even with a
        // harvest in between — must continue the shard's sequence and keep
        // storing into the same datastores, not deadlock or clobber them.
        let mut rt = Runtime::in_memory();
        rt.set_capture_mode(CaptureMode::Async);
        let mut strategy = LineageStrategy::new();
        strategy.set(0, vec![StorageStrategy::full_one()]);
        rt.set_strategy(strategy);
        let shape = Shape::d2(4, 4);
        let meta = subzero_engine::OpMeta::new(vec![shape], shape);
        let pair = |i: u32| RegionPair::Full {
            outcells: vec![Coord::d2(i / 4, i % 4)],
            incells: vec![vec![Coord::d2(i / 4, i % 4)]],
        };
        let exec = OpExecution {
            run_id: 0,
            op_id: 0,
            op_name: "op",
            meta: &meta,
            elapsed: Duration::ZERO,
        };
        rt.collect_batches(&exec, vec![RegionBatch::new((0..8).map(pair).collect())])
            .unwrap();
        // Harvest in between (as a mid-run query would).
        assert_eq!(rt.datastores(0, 0).len(), 1);
        rt.collect_batches(&exec, vec![RegionBatch::new((8..16).map(pair).collect())])
            .unwrap();
        rt.flush_capture().unwrap();
        let stored: u64 = rt.datastores(0, 0).iter().map(|ds| ds.pairs_stored()).sum();
        assert_eq!(stored, 16, "both collections landed in one datastore set");
    }

    #[test]
    fn drop_newest_policy_sheds_instead_of_blocking() {
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        rt.set_capture_mode(CaptureMode::Async);
        rt.set_capture_config(CaptureConfig {
            queue_depth: 1,
            flushers: 1,
            policy: OverflowPolicy::DropNewest,
        });
        let mut strategy = LineageStrategy::new();
        strategy.set(0, vec![StorageStrategy::full_one()]);
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        engine.set_capture_batch_size(1);
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        let dropped = rt.dropped_batches();
        rt.flush_capture().unwrap();
        let stored: u64 = rt
            .datastores(run.run_id, 0)
            .iter()
            .map(|ds| ds.pairs_stored())
            .sum();
        // Whatever was shed is accounted for; nothing hangs and the stored
        // prefix plus the drop counter covers every emitted pair.
        assert_eq!(stored + dropped, 16, "16 single-pair batches emitted");
        // The shed count survives pipeline shutdown and reconfiguration.
        rt.shutdown_capture().unwrap();
        assert_eq!(rt.dropped_batches(), dropped, "count survives shutdown");
    }

    #[test]
    fn run_stats_filters_by_run() {
        let wf = workflow();
        let mut rt = Runtime::in_memory();
        let mut engine = Engine::new();
        let r1 = engine.execute(&wf, &externals(), &mut rt).unwrap();
        let r2 = engine.execute(&wf, &externals(), &mut rt).unwrap();
        assert_eq!(rt.run_stats(r1.run_id).len(), 2);
        assert_eq!(rt.run_stats(r2.run_id).len(), 2);
        // Lineage query cells: coordinate sanity for the recorded stats.
        assert!(rt.op_stats(r1.run_id, 1).unwrap().exec_time >= Duration::ZERO);
        let _ = Coord::d2(0, 0);
    }
}
