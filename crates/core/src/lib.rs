//! # subzero
//!
//! SubZero: a fine-grained lineage capture, storage and query system for
//! scientific array workflows (Wu, Madden, Stonebraker — ICDE 2013).
//!
//! SubZero sits on top of a SciDB-like workflow executor
//! ([`subzero_engine`]) and records *region lineage*: relationships between
//! sets of output cells and sets of input cells of each operator.  Operators
//! expose lineage through the `lwrite()` API and/or mapping functions; the
//! runtime encodes and stores region pairs in per-operator datastores; and a
//! per-run [`QuerySession`] answers backward and forward
//! lineage queries by joining query cells with stored lineage, mapping
//! functions, or operator re-execution — whichever the chosen strategy (and
//! the query-time optimizer) prefers.
//!
//! ## Crate layout
//!
//! * [`model`] — storage strategies: lineage mode × encoding granularity ×
//!   index direction (`FullOne`, `FullMany`, `PayOne`, `PayMany`, forward or
//!   backward optimized), plus workflow-level strategy assignments.
//! * [`encoder`] — byte-level encodings of region-pair entries (Fig. 4 of the
//!   paper).
//! * [`datastore`] — one [`OpDatastore`] per
//!   (operator, strategy): hash entries in a [`subzero_store`] database plus
//!   an R-tree over the key cells for the *Many* encodings.  Lookups are
//!   batch-oriented (`lookup_backward_many`): one call answers many queries,
//!   sharing decoded entries and — on a mismatched index direction — the
//!   single streamed full scan.
//! * [`runtime`] — the [`Runtime`] lineage collector that
//!   plugs into the workflow executor, buffers and encodes region pairs, and
//!   gathers the statistics the optimizer needs.
//! * [`capture`] — the async capture pipeline: a bounded queue and a pool of
//!   background flusher threads that take encode + store off the executor
//!   thread ([`CaptureMode::Async`](capture::CaptureMode)), with a flush
//!   barrier, drain-on-shutdown, and flusher-failure propagation back to the
//!   next engine call.
//! * [`query`] — the [`QuerySession`]: traversals
//!   derived from the workflow DAG (callers name *arrays*, never `(operator,
//!   input)` step vectors), multi-path fan-out at DAG joins, multi-query
//!   batching, streaming [`LineageCursor`]s, the
//!   entire-array optimization, and the query-time fallback to re-execution.
//!   The legacy [`LineageQuery`] +
//!   [`QueryExecutor`] explicit-path surface remains as
//!   a validated shim over the same step engine.
//! * [`reexec`] — turning traced region pairs (from black-box re-execution)
//!   into query answers.
//! * [`system`] — the [`SubZero`] façade: execute workflows
//!   under a lineage strategy, borrow query sessions, report overheads.
//! * [`sync`] — the sanctioned gateway to sync/thread primitives: std
//!   re-exports normally, the loom model-checking shim under `--cfg loom`.
//!   Direct `std::sync`/`std::thread` use elsewhere is banned by
//!   `cargo xtask lint`.
//!
//! ## Quick start
//!
//! ```
//! use std::collections::HashMap;
//! use std::sync::Arc;
//! use subzero::prelude::*;
//! use subzero_engine::ops::{Elementwise1, UnaryKind};
//!
//! // A tiny workflow: threshold(scale(img)).
//! let mut b = Workflow::builder("quickstart");
//! let scale = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))), "img");
//! let thresh = b.add_unary(Arc::new(Elementwise1::new(UnaryKind::Threshold(4.0))), scale);
//! let wf = Arc::new(b.build().unwrap());
//!
//! // Execute it under SubZero with the default (black-box + mapping) strategy.
//! let mut subzero = SubZero::new();
//! let mut inputs = HashMap::new();
//! inputs.insert("img".to_string(), Array::from_rows(&[vec![1.0, 3.0]]));
//! let run = subzero.execute(&wf, &inputs).unwrap();
//!
//! // Trace the bright output cell back to the input image: the session
//! // derives the thresh -> scale -> "img" traversal from the DAG.
//! let mut session = subzero.session(&run);
//! let result = session
//!     .backward(vec![Coord::d2(0, 1)])
//!     .from(thresh)
//!     .to_source("img")
//!     .unwrap();
//! assert_eq!(result.cells.to_coords(), vec![Coord::d2(0, 1)]);
//!
//! // Which outputs does the bright input pixel influence?
//! let result = session
//!     .forward(vec![Coord::d2(0, 1)])
//!     .from_source("img")
//!     .to(thresh)
//!     .unwrap();
//! assert_eq!(result.cells.to_coords(), vec![Coord::d2(0, 1)]);
//! ```
//!
//! ## Migrating from `LineageQuery`
//!
//! `LineageQuery::backward(cells, vec![(thresh, 0), (scale, 0)])` becomes
//! `session.backward(cells).from(thresh).to_source("img")` — name the two
//! endpoint arrays and the session derives the steps (unioning over every
//! DAG path between them).  The old type still works as a deprecated shim
//! for pinning one exact path, now validated against the DAG
//! ([`QueryError::InvalidPath`] instead of
//! silently-wrong answers), and a parity test holds the two surfaces equal.

pub mod capture;
pub mod datastore;
pub mod encoder;
pub mod model;
pub mod parallel;
pub mod query;
pub mod reexec;
pub mod runtime;
pub mod sync;
pub mod system;

pub use capture::{BoundedQueue, CaptureConfig, CaptureMode, OverflowPolicy};
pub use datastore::OpDatastore;
pub use model::{Direction, Granularity, LineageStrategy, StorageStrategy, StrategyError};
pub use query::{
    LineageCursor, LineageQuery, QueryCache, QueryCacheStats, QueryError, QueryExecutor,
    QueryReport, QueryResult, QuerySession, QuerySpec, StepMethod,
};
pub use runtime::{CaptureStats, IngestMode, OperatorLineageStats, Runtime};
pub use subzero_engine::paths::ArrayNode;
pub use system::SubZero;

/// Convenience re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::capture::{CaptureConfig, CaptureMode, OverflowPolicy};
    pub use crate::model::{Direction, Granularity, LineageStrategy, StorageStrategy};
    pub use crate::query::{LineageCursor, LineageQuery, QueryResult, QuerySession, QuerySpec};
    pub use crate::system::SubZero;
    pub use subzero_array::{Array, CellSet, Coord, Shape};
    pub use subzero_engine::paths::ArrayNode;
    pub use subzero_engine::{LineageMode, Workflow};
}
