//! Per-operator lineage datastores.
//!
//! "The runtime allocates a new BerkeleyDB database for each operator
//! instance that stores region lineage" (§VI-A).  An [`OpDatastore`] is that
//! database: it owns a [`Database`] of encoded region-pair entries, the
//! R-tree over key-side cells for the *Many* encodings, and the statistics
//! (bytes, entries, encode time) the optimizer's cost model consumes.
//!
//! A datastore is created for one `(operator execution, storage strategy)`
//! pair and answers backward/forward lookups for the query executor.  When a
//! query direction does not match the strategy's index direction the lookup
//! degrades to a full scan — deliberately so, because that mismatch penalty
//! (up to two orders of magnitude in the paper's genomics benchmark) is one
//! of the effects SubZero's optimizer exists to avoid.

use std::collections::{hash_map, HashMap, HashSet};
use std::time::{Duration, Instant};

use subzero_array::{BoundingBox, CellSet, Coord, Shape};
use subzero_engine::{OpMeta, Operator, RegionPair};
use subzero_store::codec::{
    decode_fixed_u64, encode_fixed_u64, read_varint, write_varint, Arena, CodecError, ScanFrame,
    Span,
};
use subzero_store::hash::FxHashMap;
use subzero_store::kv::{Database, KvBackend, MemBackend};
use subzero_store::RTree;

use crate::encoder::{
    self, decode_entry_ids, decode_entry_ids_into, decode_full_entry, decode_full_entry_frame,
    decode_key, decode_key_linear, decode_pay_entry, decode_payloads, DecodedKey, DecodedKeyLinear,
    FullEntry, FullEntryRuns, PackedCellKey, PayEntry,
};
use crate::model::{Direction, Granularity, StorageStrategy};
use crate::parallel;
use subzero_engine::LineageMode;

/// Magic bytes of the sidecar spatial-index file persisted next to a
/// file-backed store's `.kv` log (see
/// [`persist_sidecar_index`](OpDatastore::persist_sidecar_index)).
const SIDECAR_MAGIC: [u8; 4] = *b"SZIX";
/// Format version of the sidecar index file.
const SIDECAR_VERSION: u8 = 1;

/// Outcome of one datastore lookup.
#[derive(Debug, Clone)]
pub struct LookupOutcome {
    /// Lineage cells found (input cells for backward lookups, output cells
    /// for forward lookups).
    pub result: CellSet,
    /// The query cells for which stored lineage was found.  Composite
    /// lineage uses this to decide which cells fall back to the default
    /// mapping function.
    pub covered: CellSet,
    /// Number of hash entries fetched.
    pub entries_fetched: usize,
    /// Whether the lookup had to scan the whole datastore because the
    /// stored index direction did not match the query direction.
    pub scanned: bool,
}

/// Write-side key dedup for one ingestion batch.
///
/// The per-pair path re-reads and rewrites a hash record on every key
/// collision ("decode, merge, re-encode"); within a batch that is wasted
/// work.  The interner coalesces repeated cell keys *before they ever reach
/// the kv table*: keys stay in their packed integer form
/// ([`PackedCellKey`] — no allocation, FxHash over one word) until first
/// touch, at which point the key bytes are materialised once into the
/// interner's arena.  Every later touch of the same key is a hash probe plus
/// an in-place append to the staged delta.
///
/// Cell-record merges are pure appends (entry-id lists, payload lists), so
/// the staged values are *deltas*, not full records: nothing is read from
/// the database while staging, and the flush applies every delta with one
/// [`Database::merge_append_batch`] group write — one table probe per
/// distinct key, no value clones, and exactly the bytes the per-pair path's
/// read-modify-write sequence would have left behind.
/// Bytes of staged delta stored inline in a [`KeyInterner`] slot.  An
/// entry-id varint is 1-3 bytes at realistic scales, so the inline buffer
/// absorbs several touches of a key without any heap allocation; payload
/// deltas and heavily-shared keys overflow into the spill `Vec`.
const SLOT_INLINE: usize = 15;

/// One distinct key's staging state: the materialised key bytes (a span of
/// the interner's key arena) and the append-only delta, inline while small.
struct Slot {
    key: Span,
    inline_len: u8,
    inline: [u8; SLOT_INLINE],
    /// Overflow storage; once non-empty it holds the *whole* delta
    /// (`Vec::new` does not allocate, so untouched spills are free).
    spill: Vec<u8>,
}

impl Slot {
    fn new(key: Span) -> Self {
        Slot {
            key,
            inline_len: 0,
            inline: [0; SLOT_INLINE],
            spill: Vec::new(),
        }
    }

    /// Appends `bytes` to the staged delta.
    fn append(&mut self, bytes: &[u8]) {
        let len = self.inline_len as usize;
        if self.spill.is_empty() && len + bytes.len() <= SLOT_INLINE {
            self.inline[len..len + bytes.len()].copy_from_slice(bytes);
            self.inline_len += bytes.len() as u8;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline[..len]);
                self.inline_len = 0;
            }
            self.spill.extend_from_slice(bytes);
        }
    }

    /// The staged delta bytes.
    fn delta(&self) -> &[u8] {
        if self.spill.is_empty() {
            &self.inline[..self.inline_len as usize]
        } else {
            &self.spill
        }
    }
}

#[derive(Default)]
struct KeyInterner {
    /// packed key -> index into `slots`.
    index: FxHashMap<PackedCellKey, usize>,
    /// Per distinct key, in first-touch order.
    slots: Vec<Slot>,
    /// Arena holding the distinct keys' bytes back-to-back.
    keys: Arena,
    /// Reusable encode scratch for one append.
    scratch: Vec<u8>,
}

impl KeyInterner {
    /// An interner expecting around `keys` key touches.
    fn with_capacity(keys: usize) -> Self {
        let mut interner = KeyInterner::default();
        interner.index.reserve(keys);
        interner.slots.reserve(keys);
        interner
    }

    /// Appends one value fragment (written by `write`, e.g. an entry-id
    /// varint or a length-prefixed payload) to the staged delta for `key`,
    /// interning the key on first touch.
    fn append_with(&mut self, key: PackedCellKey, write: impl FnOnce(&mut Vec<u8>)) {
        self.scratch.clear();
        write(&mut self.scratch);
        let slot = match self.index.entry(key) {
            hash_map::Entry::Occupied(e) => *e.get(),
            hash_map::Entry::Vacant(e) => {
                let start = self.keys.begin();
                key.write_into(self.keys.buf_mut());
                let span = self.keys.finish(start);
                self.slots.push(Slot::new(span));
                *e.insert(self.slots.len() - 1)
            }
        };
        self.slots[slot].append(&self.scratch);
    }

    /// Applies every staged delta with one group write.
    fn flush(self, db: &mut Database) {
        if self.slots.is_empty() {
            return;
        }
        let items: Vec<(&[u8], &[u8])> = self
            .slots
            .iter()
            .map(|slot| (self.keys.get(slot.key), slot.delta()))
            .collect();
        db.merge_append_batch(&items);
    }
}

/// Materialises the entry-record keys `base_id .. base_id + count` into one
/// arena (the batched path never allocates a `Vec` per entry key).
fn entry_key_arena(base_id: u64, count: usize) -> (Arena, Vec<Span>) {
    let mut keys = Arena::with_capacity(count * 9);
    let mut spans = Vec::with_capacity(count);
    for i in 0..count {
        let start = keys.begin();
        encoder::entry_key_into(keys.buf_mut(), base_id + i as u64);
        spans.push(keys.finish(start));
    }
    (keys, spans)
}

/// Record-block size for streamed full scans ([`Database::scan_batch`]):
/// large enough to amortise the per-block dispatch, small enough that a
/// block of decoded records stays cache-resident.
const SCAN_BLOCK: usize = 1024;

/// Decoded-entry cache shared by every query of one batched lookup: each
/// hash entry is fetched and decoded at most once per batch, however many
/// queries (or query cells) reference it.
struct EntryCache<T> {
    /// entry id -> (a body existed, decoded entry if decoding succeeded)
    map: HashMap<u64, (bool, Option<T>)>,
}

impl<T> EntryCache<T> {
    fn new() -> Self {
        EntryCache {
            map: HashMap::new(),
        }
    }

    /// Returns whether a body exists for `id` (for per-query fetch
    /// accounting) and the decoded entry, fetching and decoding on first use.
    ///
    /// Reads go through [`Database::peek`] so caches can live on the worker
    /// threads of a fanned-out lookup, which share the database immutably.
    fn get(
        &mut self,
        db: &Database,
        id: u64,
        decode: impl FnOnce(&[u8]) -> Option<T>,
    ) -> (bool, Option<&T>) {
        let slot = self
            .map
            .entry(id)
            .or_insert_with(|| match db.peek(&encoder::entry_key(id)) {
                Some(body) => (true, decode(&body)),
                None => (false, None),
            });
        (slot.0, slot.1.as_ref())
    }

    /// Forgets every cached entry (keeping the allocation); the write paths
    /// call this because a cached "no body for this id" miss can be
    /// invalidated by a later write of that entry id.
    fn clear(&mut self) {
        self.map.clear();
    }
}

/// Grows `pool` to the shard count a fanned-out lookup will use (one cache
/// per worker chunk, capped at one per query) and returns the slice whose
/// shards [`parallel::parallel_chunks_stateful`] pins to the query chunks.
/// Caches persist on the datastore between calls, so a repeat batch against
/// an unchanged store starts warm.
fn cache_shards<T>(
    pool: &mut Vec<EntryCache<T>>,
    workers: usize,
    queries: usize,
) -> &mut [EntryCache<T>] {
    let want = workers.min(queries).max(1);
    while pool.len() < want {
        pool.push(EntryCache::new());
    }
    &mut pool[..want]
}

/// One operator's materialised lineage under one storage strategy.
///
/// Ingestion is batch-oriented: the runtime hands whole
/// [`RegionBatch`](subzero_engine::RegionBatch)es of pairs to
/// [`store_batch`](OpDatastore::store_batch), which encodes the
/// batch (in parallel on multi-core hosts), writes hash entries with one
/// group-flushed [`put_batch`](Database::put_batch), coalesces key-collision
/// merges per batch, and *stages* spatial-index entries instead of inserting
/// them one by one — the R-tree is bulk-loaded (STR-packed) lazily before the
/// first lookup.  The per-pair [`store_pair`](OpDatastore::store_pair) path
/// is kept as the reference implementation; both paths produce byte-identical
/// datastore contents.
pub struct OpDatastore {
    strategy: StorageStrategy,
    out_shape: Shape,
    in_shapes: Vec<Shape>,
    db: Database,
    rtree: Option<RTree>,
    /// Spatial-index entries captured by the batched path but not yet
    /// indexed; drained into `rtree` (STR bulk-loaded when the tree is still
    /// empty) on first lookup.  The per-pair reference path inserts into the
    /// tree directly, as the prototype did.
    rtree_staged: Vec<(BoundingBox, u64)>,
    next_entry_id: u64,
    pairs_stored: u64,
    cells_stored: u64,
    encode_time: Duration,
    /// Worker threads the batched *lookup* paths may fan out across (the
    /// batched write path takes its worker budget per call, because the
    /// runtime splits it between datastore shards).
    workers: usize,
    /// Per-worker decoded-entry caches reused across batched `Full` lookups:
    /// shard `i` of a fanned-out lookup always runs with cache `i`, so repeat
    /// batches against an unchanged store hit warm caches instead of
    /// rebuilding one per call site.  Cleared by the write paths.
    full_caches: Vec<EntryCache<FullEntry>>,
    /// As [`full_caches`](Self::full_caches), for payload entries.
    pay_caches: Vec<EntryCache<PayEntry>>,
}

impl OpDatastore {
    /// Creates a datastore backed by the given key-value backend.
    pub fn new(
        name: impl Into<String>,
        strategy: StorageStrategy,
        meta: &OpMeta,
        backend: Box<dyn KvBackend>,
    ) -> Self {
        let rtree = match strategy.granularity {
            Granularity::Many if strategy.stores_pairs() => Some(RTree::new()),
            _ => None,
        };
        let mut store = OpDatastore {
            strategy,
            out_shape: meta.output_shape,
            in_shapes: meta.input_shapes.clone(),
            db: Database::new(name, backend),
            rtree,
            rtree_staged: Vec::new(),
            next_entry_id: 0,
            pairs_stored: 0,
            cells_stored: 0,
            encode_time: Duration::ZERO,
            workers: parallel::default_workers(),
            full_caches: Vec::new(),
            pay_caches: Vec::new(),
        };
        // A non-empty file backend means this datastore is being *reopened*
        // (daemon restart, crash recovery): restore the spatial index and
        // entry counters, from the sidecar when it is still valid, otherwise
        // by rescanning the log.
        store.recover_on_open();
        store
    }

    /// Drops every cached decoded entry; the write paths call this because a
    /// newly written entry id invalidates a cached "no body" miss.
    fn invalidate_caches(&mut self) {
        for cache in &mut self.full_caches {
            cache.clear();
        }
        for cache in &mut self.pay_caches {
            cache.clear();
        }
    }

    /// Sets how many worker threads batched lookups may fan out across
    /// (clamped to at least 1; 1 means fully serial lookups).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Creates an in-memory datastore (the common case for tests and
    /// benchmarks; the paper's prototype also treats lineage as a cache).
    pub fn in_memory(name: impl Into<String>, strategy: StorageStrategy, meta: &OpMeta) -> Self {
        Self::new(name, strategy, meta, Box::new(MemBackend::new()))
    }

    /// The storage strategy this datastore implements.
    pub fn strategy(&self) -> StorageStrategy {
        self.strategy
    }

    /// Number of region pairs stored.
    pub fn pairs_stored(&self) -> u64 {
        self.pairs_stored
    }

    /// Total number of coordinates stored across all pairs.
    pub fn cells_stored(&self) -> u64 {
        self.cells_stored
    }

    /// Time spent encoding and writing pairs (the runtime overhead charged to
    /// this strategy).
    pub fn encode_time(&self) -> Duration {
        self.encode_time
    }

    /// Logical bytes used by the hash entries plus the spatial index
    /// (including index entries staged but not yet bulk-loaded, estimated
    /// with the inner-node overhead a packed tree will add so the number
    /// does not jump when the first lookup builds the index).
    pub fn bytes_used(&self) -> usize {
        let entry_bytes = std::mem::size_of::<BoundingBox>() + 8;
        let staged_estimate =
            self.rtree_staged.len() * entry_bytes * RTree::BRANCHING / (RTree::BRANCHING - 1);
        self.db.bytes_used()
            + self.rtree.as_ref().map(|t| t.size_bytes()).unwrap_or(0)
            + staged_estimate
    }

    /// Number of live hash entries.
    pub fn num_entries(&self) -> usize {
        self.db.len()
    }

    /// A sorted copy of every `(key, value)` pair in the hash database.
    /// Used by tests to assert that the batched and per-pair ingestion paths
    /// produce byte-identical contents.
    pub fn snapshot(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = self.db.iter().collect();
        pairs.sort();
        pairs
    }

    /// Stores one region pair according to the strategy.
    ///
    /// Pairs whose kind does not match the strategy's mode (e.g. a payload
    /// pair arriving for a `Full` strategy) are ignored: operators may emit
    /// several kinds when asked for several modes, and each datastore keeps
    /// only what it understands.
    pub fn store_pair(&mut self, pair: &RegionPair) {
        self.invalidate_caches();
        let start = Instant::now();
        match (self.strategy.mode, pair) {
            (LineageMode::Full, RegionPair::Full { outcells, incells }) => {
                self.store_full(outcells, incells);
            }
            (LineageMode::Pay | LineageMode::Comp, RegionPair::Payload { outcells, payload }) => {
                self.store_payload(outcells, payload);
            }
            _ => return,
        }
        self.pairs_stored += 1;
        self.cells_stored += pair.num_cells() as u64;
        self.encode_time += start.elapsed();
    }

    fn store_full(&mut self, outcells: &[Coord], incells: &[Vec<Coord>]) {
        if outcells.is_empty() {
            return;
        }
        match (self.strategy.granularity, self.strategy.direction) {
            (Granularity::One, Direction::Backward) => {
                // Shared entry holds the input cells; one hash entry per
                // output cell references it.
                let id = self.alloc_entry();
                let body = encoder::encode_full_entry(
                    &self.out_shape,
                    &self.in_shapes,
                    &[],
                    incells,
                    false,
                );
                self.db.put(&encoder::entry_key(id), &body);
                for oc in outcells {
                    let key = encoder::out_cell_key(&self.out_shape, oc);
                    self.db.merge(&key, |old| {
                        let mut v = old.unwrap_or_default();
                        encoder::append_entry_id(&mut v, id);
                        v
                    });
                }
            }
            (Granularity::Many, Direction::Backward) => {
                let id = self.alloc_entry();
                let body = encoder::encode_full_entry(
                    &self.out_shape,
                    &self.in_shapes,
                    outcells,
                    incells,
                    true,
                );
                self.db.put(&encoder::entry_key(id), &body);
                if let (Some(tree), Some(bbox)) =
                    (self.rtree.as_mut(), BoundingBox::enclosing(outcells))
                {
                    tree.insert(bbox, id);
                }
            }
            (Granularity::One, Direction::Forward) => {
                // Shared entry holds the output cells; one hash entry per
                // input cell (tagged with its input index) references it.
                let id = self.alloc_entry();
                let body = encoder::encode_full_entry(
                    &self.out_shape,
                    &self.in_shapes,
                    outcells,
                    &vec![Vec::new(); self.in_shapes.len()],
                    true,
                );
                self.db.put(&encoder::entry_key(id), &body);
                for (i, cells) in incells.iter().enumerate() {
                    for ic in cells {
                        let key = encoder::in_cell_key(&self.in_shapes[i], i, ic);
                        self.db.merge(&key, |old| {
                            let mut v = old.unwrap_or_default();
                            encoder::append_entry_id(&mut v, id);
                            v
                        });
                    }
                }
            }
            (Granularity::Many, Direction::Forward) => {
                let id = self.alloc_entry();
                let body = encoder::encode_full_entry(
                    &self.out_shape,
                    &self.in_shapes,
                    outcells,
                    incells,
                    true,
                );
                self.db.put(&encoder::entry_key(id), &body);
                if let Some(tree) = self.rtree.as_mut() {
                    for cells in incells {
                        if let Some(bbox) = BoundingBox::enclosing(cells) {
                            tree.insert(bbox, id);
                        }
                    }
                }
            }
        }
    }

    fn store_payload(&mut self, outcells: &[Coord], payload: &[u8]) {
        if outcells.is_empty() {
            return;
        }
        match self.strategy.granularity {
            Granularity::One => {
                // The payload is duplicated into every output cell's entry
                // (the PayOne layout of Fig. 4.4).
                for oc in outcells {
                    let key = encoder::out_cell_key(&self.out_shape, oc);
                    self.db.merge(&key, |old| {
                        let mut v = old.unwrap_or_default();
                        encoder::append_payload(&mut v, payload);
                        v
                    });
                }
            }
            Granularity::Many => {
                let id = self.alloc_entry();
                let body = encoder::encode_pay_entry(&self.out_shape, outcells, payload);
                self.db.put(&encoder::entry_key(id), &body);
                if let (Some(tree), Some(bbox)) =
                    (self.rtree.as_mut(), BoundingBox::enclosing(outcells))
                {
                    tree.insert(bbox, id);
                }
            }
        }
    }

    fn alloc_entry(&mut self) -> u64 {
        let id = self.next_entry_id;
        self.next_entry_id += 1;
        id
    }

    /// Stores a whole batch of region pairs according to the strategy.
    ///
    /// Equivalent to calling [`store_pair`](OpDatastore::store_pair) on every
    /// pair in order — the stored contents are byte-identical — but the work
    /// is organised batch-at-a-time around a per-batch encode arena:
    ///
    /// * each worker thread serialises its contiguous shard of the batch
    ///   into one arena (entry bodies back-to-back, cell keys packed as
    ///   integers — no per-record allocations, no locks on the hot path);
    /// * all entry records are written zero-copy from the arena slices with
    ///   one group-flushed [`put_batch_slices`](Database::put_batch_slices);
    /// * repeated cell keys are dedup'd *before they reach the kv table* by
    ///   a per-batch interning table (`KeyInterner`), and the coalesced
    ///   append deltas are applied with one
    ///   [`merge_append_batch`](Database::merge_append_batch) group write —
    ///   one table probe per distinct key instead of a read-modify-write
    ///   per pair;
    /// * spatial-index entries are staged for deferred STR bulk loading
    ///   instead of being inserted (and split) one at a time.
    pub fn store_batch(&mut self, pairs: &[RegionPair], workers: usize) {
        if pairs.is_empty() {
            return;
        }
        self.invalidate_caches();
        let start = Instant::now();
        match self.strategy.mode {
            LineageMode::Full => self.store_full_batch(pairs, workers),
            LineageMode::Pay | LineageMode::Comp => self.store_pay_batch(pairs, workers),
            LineageMode::Map | LineageMode::Blackbox => return,
        }
        self.encode_time += start.elapsed();
    }

    fn store_full_batch(&mut self, pairs: &[RegionPair], workers: usize) {
        // Pairs whose kind matches the strategy count toward the statistics
        // (as in store_pair); only those with output cells allocate entries.
        let mut work: Vec<(&[Coord], &[Vec<Coord>])> = Vec::with_capacity(pairs.len());
        for pair in pairs {
            if let RegionPair::Full { outcells, incells } = pair {
                self.pairs_stored += 1;
                self.cells_stored += pair.num_cells() as u64;
                if !outcells.is_empty() {
                    work.push((outcells, incells));
                }
            }
        }
        if work.is_empty() {
            return;
        }
        let base_id = self.next_entry_id;
        self.next_entry_id += work.len() as u64;

        let out_shape = self.out_shape;
        let in_shapes = &self.in_shapes;
        let (granularity, direction) = (self.strategy.granularity, self.strategy.direction);
        // The FullOne-forward entry body stores empty input-cell lists; built
        // once, not once per pair.
        let empty_incells: Vec<Vec<Coord>> = vec![Vec::new(); in_shapes.len()];

        /// One worker's contiguous shard of the batch, serialised into one
        /// arena: entry bodies back-to-back, cell keys kept packed (no
        /// per-key allocation), bounding boxes flat with per-pair counts.
        struct Shard {
            bodies: Arena,
            spans: Vec<Span>,
            keys: Vec<PackedCellKey>,
            key_counts: Vec<u32>,
            boxes: Vec<BoundingBox>,
            box_counts: Vec<u32>,
        }
        let shards = parallel::parallel_chunks(&work, workers, 64, |_, chunk| {
            let mut shard = Shard {
                bodies: Arena::with_capacity(chunk.len() * 16),
                spans: Vec::with_capacity(chunk.len()),
                keys: Vec::new(),
                key_counts: Vec::with_capacity(chunk.len()),
                boxes: Vec::new(),
                box_counts: Vec::with_capacity(chunk.len()),
            };
            for &(outcells, incells) in chunk {
                let start = shard.bodies.begin();
                let keys_before = shard.keys.len();
                let boxes_before = shard.boxes.len();
                match (granularity, direction) {
                    (Granularity::One, Direction::Backward) => {
                        encoder::encode_full_entry_into(
                            shard.bodies.buf_mut(),
                            &out_shape,
                            in_shapes,
                            &[],
                            incells,
                            false,
                        );
                        shard.keys.extend(
                            outcells
                                .iter()
                                .map(|oc| PackedCellKey::out_cell(&out_shape, oc)),
                        );
                    }
                    (Granularity::One, Direction::Forward) => {
                        encoder::encode_full_entry_into(
                            shard.bodies.buf_mut(),
                            &out_shape,
                            in_shapes,
                            outcells,
                            &empty_incells,
                            true,
                        );
                        for (j, cells) in incells.iter().enumerate() {
                            shard.keys.extend(
                                cells
                                    .iter()
                                    .map(|ic| PackedCellKey::in_cell(&in_shapes[j], j, ic)),
                            );
                        }
                    }
                    (Granularity::Many, Direction::Backward) => {
                        encoder::encode_full_entry_into(
                            shard.bodies.buf_mut(),
                            &out_shape,
                            in_shapes,
                            outcells,
                            incells,
                            true,
                        );
                        shard.boxes.extend(BoundingBox::enclosing(outcells));
                    }
                    (Granularity::Many, Direction::Forward) => {
                        encoder::encode_full_entry_into(
                            shard.bodies.buf_mut(),
                            &out_shape,
                            in_shapes,
                            outcells,
                            incells,
                            true,
                        );
                        shard.boxes.extend(
                            incells
                                .iter()
                                .filter_map(|cells| BoundingBox::enclosing(cells)),
                        );
                    }
                }
                shard.spans.push(shard.bodies.finish(start));
                shard
                    .key_counts
                    .push((shard.keys.len() - keys_before) as u32);
                shard
                    .box_counts
                    .push((shard.boxes.len() - boxes_before) as u32);
            }
            shard
        });

        // Serial phase: dedup the cell-record keys, stage the spatial-index
        // entries, then hand the batch to the backend as two zero-copy group
        // writes over the arena slices — the entry bodies, and the coalesced
        // cell-record deltas.
        let (entry_keys, entry_key_spans) = entry_key_arena(base_id, work.len());
        let total_keys: usize = shards.iter().map(|s| s.keys.len()).sum();
        let mut interner = KeyInterner::with_capacity(total_keys);
        let mut id = base_id;
        for shard in &shards {
            let (mut key_pos, mut box_pos) = (0usize, 0usize);
            for (&kc, &bc) in shard.key_counts.iter().zip(&shard.box_counts) {
                for key in &shard.keys[key_pos..key_pos + kc as usize] {
                    interner.append_with(*key, |v| encoder::append_entry_id(v, id));
                }
                for bbox in &shard.boxes[box_pos..box_pos + bc as usize] {
                    self.rtree_staged.push((*bbox, id));
                }
                key_pos += kc as usize;
                box_pos += bc as usize;
                id += 1;
            }
        }
        let mut records: Vec<(&[u8], &[u8])> = Vec::with_capacity(work.len());
        let mut i = 0usize;
        for shard in &shards {
            for span in &shard.spans {
                records.push((entry_keys.get(entry_key_spans[i]), shard.bodies.get(*span)));
                i += 1;
            }
        }
        self.db.put_batch_slices(&records);
        interner.flush(&mut self.db);
    }

    fn store_pay_batch(&mut self, pairs: &[RegionPair], workers: usize) {
        let mut work: Vec<(&[Coord], &[u8])> = Vec::with_capacity(pairs.len());
        for pair in pairs {
            if let RegionPair::Payload { outcells, payload } = pair {
                self.pairs_stored += 1;
                self.cells_stored += pair.num_cells() as u64;
                if !outcells.is_empty() {
                    work.push((outcells, payload));
                }
            }
        }
        if work.is_empty() {
            return;
        }
        match self.strategy.granularity {
            Granularity::One => {
                // The payload is duplicated into every output cell's record;
                // pack the keys in parallel (integers, no allocation), then
                // dedup and append the payloads per batch.
                let out_shape = self.out_shape;
                let shard_keys: Vec<Vec<PackedCellKey>> =
                    parallel::parallel_chunks(&work, workers, 64, |_, chunk| {
                        chunk
                            .iter()
                            .flat_map(|&(outcells, _)| {
                                outcells
                                    .iter()
                                    .map(|oc| PackedCellKey::out_cell(&out_shape, oc))
                            })
                            .collect()
                    });
                let total_keys: usize = shard_keys.iter().map(Vec::len).sum();
                let mut interner = KeyInterner::with_capacity(total_keys);
                let mut keys = shard_keys.iter().flatten();
                for &(outcells, payload) in &work {
                    for _ in 0..outcells.len() {
                        let key = *keys.next().expect("one packed key per output cell");
                        interner.append_with(key, |v| encoder::append_payload(v, payload));
                    }
                }
                interner.flush(&mut self.db);
            }
            Granularity::Many => {
                let base_id = self.next_entry_id;
                self.next_entry_id += work.len() as u64;
                let out_shape = self.out_shape;
                // Arena-encode the entry bodies per worker shard, then write
                // the whole batch with one zero-copy group write.
                let shards: Vec<(Arena, Vec<Span>)> =
                    parallel::parallel_chunks(&work, workers, 64, |_, chunk| {
                        let mut bodies = Arena::with_capacity(chunk.len() * 16);
                        let mut spans = Vec::with_capacity(chunk.len());
                        for &(outcells, payload) in chunk {
                            let start = bodies.begin();
                            encoder::encode_pay_entry_into(
                                bodies.buf_mut(),
                                &out_shape,
                                outcells,
                                payload,
                            );
                            spans.push(bodies.finish(start));
                        }
                        (bodies, spans)
                    });
                for (i, &(outcells, _)) in work.iter().enumerate() {
                    if let Some(bbox) = BoundingBox::enclosing(outcells) {
                        self.rtree_staged.push((bbox, base_id + i as u64));
                    }
                }
                let (entry_keys, entry_key_spans) = entry_key_arena(base_id, work.len());
                let mut records: Vec<(&[u8], &[u8])> = Vec::with_capacity(work.len());
                let mut i = 0usize;
                for (bodies, spans) in &shards {
                    for span in spans {
                        records.push((entry_keys.get(entry_key_spans[i]), bodies.get(*span)));
                        i += 1;
                    }
                }
                self.db.put_batch_slices(&records);
            }
        }
    }

    /// Finishes an ingestion phase: builds the spatial index from staged
    /// entries, flushes the hash database and persists the sidecar index
    /// file for file-backed stores.  Lookups do this lazily; call it
    /// explicitly to move the cost out of the first query (the benchmarks
    /// do, so index build time is charged to ingestion, not to queries).
    pub fn finish_ingest(&mut self) {
        self.ensure_spatial_index();
        self.db.flush().expect("lineage database flush");
        self.persist_sidecar_index();
    }

    /// Forces flushed log bytes to stable storage (no-op in memory).  The
    /// transactional prepare path calls this before recording the log length
    /// as durable.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.db.sync()
    }

    /// `(file name, flushed byte length)` of the backing `.kv` log — exactly
    /// what a [`WalRecord::Prepare`](subzero_store::WalRecord::Prepare)
    /// publishes for this store.  `None` for in-memory stores (nothing to
    /// recover, nothing to prepare).
    pub fn commit_file(&self) -> Option<(String, u64)> {
        let name = self.db.file_path()?.file_name()?.to_str()?.to_string();
        Some((name, self.db.log_len()?))
    }

    /// Folds superseded `merge_append_batch` delta chains (and overwritten
    /// entries generally) out of the backing log, returning bytes reclaimed.
    ///
    /// Only call on fully committed stores: compaction rewrites the file, so
    /// staged-but-uncommitted tail bytes would be folded in.  Decoded-entry
    /// caches are dropped (record offsets moved) and the sidecar index is
    /// re-stamped against the dense log.
    pub fn compact(&mut self) -> std::io::Result<u64> {
        let reclaimed = self.db.compact()?;
        if reclaimed > 0 {
            self.invalidate_caches();
            self.persist_sidecar_index();
        }
        Ok(reclaimed)
    }

    /// Drains staged spatial-index entries into the R-tree.  An empty tree is
    /// STR bulk-loaded from the whole staged set (the common case: capture
    /// everything, then query); a non-empty tree absorbs late arrivals with
    /// incremental inserts.  Called before every indexed lookup.
    fn ensure_spatial_index(&mut self) {
        if self.rtree_staged.is_empty() {
            return;
        }
        let Some(tree) = self.rtree.as_mut() else {
            self.rtree_staged.clear();
            return;
        };
        let staged = std::mem::take(&mut self.rtree_staged);
        if tree.is_empty() {
            *tree = RTree::bulk_load(staged);
        } else {
            for (bbox, id) in staged {
                tree.insert(bbox, id);
            }
        }
    }

    /// Path of the sidecar index file (`<log>.kv.idx`) for file-backed
    /// stores, `None` in memory.
    fn sidecar_path(&self) -> Option<std::path::PathBuf> {
        let path = self.db.file_path()?;
        let mut os = path.as_os_str().to_os_string();
        os.push(".idx");
        Some(std::path::PathBuf::from(os))
    }

    /// Writes the spatial index and entry counters to the sidecar file next
    /// to the backing `.kv` log, stamped with the log's current persist
    /// fingerprint so a reopen can tell whether the sidecar still describes
    /// the log contents.  No-op for in-memory stores and strategies that
    /// store no region pairs.  A write failure only warns: the sidecar is a
    /// restart accelerator, and a reopen rebuilds everything from the log.
    pub fn persist_sidecar_index(&mut self) {
        if !self.strategy.stores_pairs() {
            return;
        }
        let Some(path) = self.sidecar_path() else {
            return;
        };
        self.ensure_spatial_index();
        let mut buf = Vec::new();
        buf.extend_from_slice(&SIDECAR_MAGIC);
        buf.push(SIDECAR_VERSION);
        buf.extend_from_slice(&encode_fixed_u64(self.db.persist_stamp()));
        write_varint(&mut buf, self.next_entry_id);
        write_varint(&mut buf, self.pairs_stored);
        write_varint(&mut buf, self.cells_stored);
        match &self.rtree {
            Some(tree) => {
                buf.push(1);
                tree.serialize_into(&mut buf);
            }
            None => buf.push(0),
        }
        if let Err(e) = std::fs::write(&path, &buf) {
            eprintln!(
                "subzero: failed to write spatial-index sidecar {}: {e}",
                path.display()
            );
        }
    }

    /// Restores index state when constructed over a non-empty file backend:
    /// loads the sidecar index if its stamp still matches the log, otherwise
    /// rebuilds the index and counters by scanning the log (warning when a
    /// sidecar existed but no longer matched — e.g. after a crash between a
    /// log append and the sidecar rewrite).
    fn recover_on_open(&mut self) {
        if !self.strategy.stores_pairs() || self.db.is_empty() {
            return;
        }
        let Some(path) = self.sidecar_path() else {
            return;
        };
        let loaded = match std::fs::read(&path) {
            Err(_) => false, // No sidecar (older store / crash before first write).
            Ok(bytes) => match Self::parse_sidecar(&bytes, self.db.persist_stamp()) {
                Ok((next_entry_id, pairs_stored, cells_stored, tree)) => {
                    self.next_entry_id = next_entry_id;
                    self.pairs_stored = pairs_stored;
                    self.cells_stored = cells_stored;
                    if self.rtree.is_some() {
                        match tree {
                            Some(tree) => self.rtree = Some(tree),
                            // Valid sidecar but no tree for an indexed
                            // strategy: treat as corrupt, fall through.
                            None => {
                                eprintln!(
                                    "subzero: spatial-index sidecar {} lacks the index tree; \
                                     rebuilding from the log",
                                    path.display()
                                );
                                self.rebuild_index_from_scan();
                                return;
                            }
                        }
                    }
                    self.rtree_staged.clear();
                    true
                }
                Err(e) => {
                    eprintln!(
                        "subzero: stale or corrupt spatial-index sidecar {} ({e}); \
                         rebuilding from the log",
                        path.display()
                    );
                    false
                }
            },
        };
        if !loaded {
            self.rebuild_index_from_scan();
        }
    }

    /// Decodes a sidecar file, validating magic, version and the log stamp.
    #[allow(clippy::type_complexity)]
    fn parse_sidecar(
        bytes: &[u8],
        expect_stamp: u64,
    ) -> Result<(u64, u64, u64, Option<RTree>), CodecError> {
        if bytes.len() < 13 || bytes[..4] != SIDECAR_MAGIC {
            return Err(CodecError::Corrupt("sidecar magic"));
        }
        if bytes[4] != SIDECAR_VERSION {
            return Err(CodecError::Corrupt("sidecar format version"));
        }
        let stamp = decode_fixed_u64(&bytes[5..13])?;
        if stamp != expect_stamp {
            return Err(CodecError::Corrupt(
                "sidecar stamp does not match the log contents",
            ));
        }
        let mut pos = 13usize;
        let next_entry_id = read_varint(bytes, &mut pos)?;
        let pairs_stored = read_varint(bytes, &mut pos)?;
        let cells_stored = read_varint(bytes, &mut pos)?;
        let has_tree = *bytes.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        let tree = match has_tree {
            0 => None,
            1 => Some(RTree::deserialize(bytes, &mut pos)?),
            _ => return Err(CodecError::Corrupt("sidecar tree flag")),
        };
        if pos != bytes.len() {
            return Err(CodecError::Corrupt("sidecar trailing bytes"));
        }
        Ok((next_entry_id, pairs_stored, cells_stored, tree))
    }

    /// Rebuilds the spatial index and entry counters by scanning the hash
    /// database — the fallback when no valid sidecar exists.  `next_entry_id`
    /// and the index are restored exactly; `pairs_stored`/`cells_stored`
    /// (optimizer statistics only) are reconstructed from the shared entries,
    /// which undercounts the *One*-granularity layouts that fold cells into
    /// hash keys.
    fn rebuild_index_from_scan(&mut self) {
        let out_shape = self.out_shape;
        let in_shapes = self.in_shapes.clone();
        let mode = self.strategy.mode;
        let direction = self.strategy.direction;
        let wants_tree = self.rtree.is_some();
        let mut next_entry_id = 0u64;
        let mut pairs_stored = 0u64;
        let mut cells_stored = 0u64;
        let mut staged: Vec<(BoundingBox, u64)> = Vec::new();
        self.db.scan_batch(256, &mut |records| {
            for (key, value) in records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())) {
                let Ok(DecodedKey::Entry(id)) = encoder::decode_key(&out_shape, &in_shapes, key)
                else {
                    continue;
                };
                next_entry_id = next_entry_id.max(id + 1);
                pairs_stored += 1;
                match mode {
                    LineageMode::Full => {
                        let Ok(entry) = decode_full_entry(&out_shape, &in_shapes, value) else {
                            continue;
                        };
                        cells_stored += entry.outcells.len() as u64;
                        cells_stored += entry.incells.iter().map(|c| c.len() as u64).sum::<u64>();
                        if wants_tree {
                            match direction {
                                Direction::Backward => {
                                    if let Some(bbox) = BoundingBox::enclosing(&entry.outcells) {
                                        staged.push((bbox, id));
                                    }
                                }
                                Direction::Forward => {
                                    for cells in &entry.incells {
                                        if let Some(bbox) = BoundingBox::enclosing(cells) {
                                            staged.push((bbox, id));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    LineageMode::Pay | LineageMode::Comp => {
                        let Ok(entry) = decode_pay_entry(&out_shape, value) else {
                            continue;
                        };
                        cells_stored += entry.outcells.len() as u64;
                        if wants_tree {
                            if let Some(bbox) = BoundingBox::enclosing(&entry.outcells) {
                                staged.push((bbox, id));
                            }
                        }
                    }
                    LineageMode::Map | LineageMode::Blackbox => {}
                }
            }
        });
        self.next_entry_id = next_entry_id;
        self.pairs_stored = pairs_stored;
        self.cells_stored = cells_stored;
        if wants_tree {
            // STR bulk load sorts by spatial tiles with id tie-breaks, so the
            // rebuilt tree is deterministic regardless of scan order.
            self.rtree = Some(RTree::bulk_load(staged));
        }
        self.rtree_staged.clear();
    }

    /// Answers one backward lookup: which cells of input `input_idx` do the
    /// query output cells depend on, according to the stored lineage?
    /// Delegates to [`lookup_backward_many`](OpDatastore::lookup_backward_many).
    pub fn lookup_backward(
        &mut self,
        query: &CellSet,
        input_idx: usize,
        op: &dyn Operator,
        meta: &OpMeta,
    ) -> LookupOutcome {
        self.lookup_backward_many(&[query], input_idx, op, meta)
            .pop()
            .expect("one outcome per query")
    }

    /// Answers one forward lookup: which output cells depend on the query
    /// cells of input `input_idx`, according to the stored lineage?
    /// Delegates to [`lookup_forward_many`](OpDatastore::lookup_forward_many).
    pub fn lookup_forward(
        &mut self,
        query: &CellSet,
        input_idx: usize,
        op: &dyn Operator,
        meta: &OpMeta,
    ) -> LookupOutcome {
        self.lookup_forward_many(&[query], input_idx, op, meta)
            .pop()
            .expect("one outcome per query")
    }

    /// Answers a whole batch of backward lookups in one pass, returning one
    /// [`LookupOutcome`] per query (identical to running each query alone).
    ///
    /// The batch shares the physical work: a hash entry referenced by several
    /// queries is fetched and decoded once, payload mapping functions run
    /// once per stored region instead of once per query, and — the big one —
    /// when the stored index direction does not match the query direction,
    /// the *single* full scan (streamed through [`Database::scan_batch`] in
    /// decode blocks riding the `put_batch` file layout) answers every query
    /// of the batch, instead of one scan per query.
    ///
    /// The work fans out across the scoped worker threads of
    /// [`parallel`] (see [`set_workers`](OpDatastore::set_workers)):
    /// indexed lookups split the query batch into per-worker shards (each
    /// with its own decoded-entry cache), and the shared scan parallelises
    /// both the per-block entry decoding and the per-query join.  Results
    /// are deterministic and identical at any worker count.
    pub fn lookup_backward_many(
        &mut self,
        queries: &[&CellSet],
        input_idx: usize,
        op: &dyn Operator,
        meta: &OpMeta,
    ) -> Vec<LookupOutcome> {
        self.ensure_spatial_index();
        if queries.is_empty() {
            return Vec::new();
        }
        let out_shape = self.out_shape;
        let in_shapes = self.in_shapes.clone();
        let in_shapes = &in_shapes;
        let workers = self.workers;
        let db = &self.db;
        let rtree = self.rtree.as_ref();
        let full_caches = cache_shards(&mut self.full_caches, workers, queries.len());
        let pay_caches = cache_shards(&mut self.pay_caches, workers, queries.len());
        let empty_outcome = || LookupOutcome {
            result: CellSet::empty(in_shapes[input_idx]),
            covered: CellSet::empty(out_shape),
            entries_fetched: 0,
            scanned: false,
        };

        match (
            self.strategy.mode,
            self.strategy.direction,
            self.strategy.granularity,
        ) {
            // --- Indexed (backward-optimized) paths -------------------------
            (LineageMode::Full, Direction::Backward, Granularity::One) => flatten(
                parallel::parallel_chunks_stateful(queries, full_caches, 2, |_, cache, shard| {
                    shard
                        .iter()
                        .map(|query| {
                            let mut out = empty_outcome();
                            for qc in query.iter() {
                                let key = encoder::out_cell_key(&out_shape, &qc);
                                let Some(value) = db.peek(&key) else {
                                    continue;
                                };
                                out.covered.insert(&qc);
                                for id in decode_entry_ids(&value).unwrap_or_default() {
                                    let (present, entry) = cache.get(db, id, |body| {
                                        decode_full_entry(&out_shape, in_shapes, body).ok()
                                    });
                                    if present {
                                        out.entries_fetched += 1;
                                    }
                                    if let Some(entry) = entry {
                                        for c in entry.incells.get(input_idx).into_iter().flatten()
                                        {
                                            out.result.insert(c);
                                        }
                                    }
                                }
                            }
                            out
                        })
                        .collect()
                }),
            ),
            (LineageMode::Full, Direction::Backward, Granularity::Many) => flatten(
                parallel::parallel_chunks_stateful(queries, full_caches, 2, |_, cache, shard| {
                    shard
                        .iter()
                        .map(|query| {
                            let mut out = empty_outcome();
                            for id in candidate_entries(rtree, query) {
                                let (present, entry) = cache.get(db, id, |body| {
                                    decode_full_entry(&out_shape, in_shapes, body).ok()
                                });
                                if present {
                                    out.entries_fetched += 1;
                                }
                                let Some(entry) = entry else { continue };
                                let hits: Vec<&Coord> = entry
                                    .outcells
                                    .iter()
                                    .filter(|c| query.contains(c))
                                    .collect();
                                if !hits.is_empty() {
                                    for c in &hits {
                                        out.covered.insert(c);
                                    }
                                    for c in entry.incells.get(input_idx).into_iter().flatten() {
                                        out.result.insert(c);
                                    }
                                }
                            }
                            out
                        })
                        .collect()
                }),
            ),
            (LineageMode::Pay | LineageMode::Comp, _, Granularity::One) => {
                // map_payload depends on the query cell, so only the record
                // fetches are shareable — and query cells rarely repeat
                // across a batch; fan the per-query loops out as they are.
                flatten(parallel::parallel_chunks(
                    queries,
                    workers,
                    2,
                    |_, shard| {
                        shard
                            .iter()
                            .map(|query| {
                                let mut out = empty_outcome();
                                for qc in query.iter() {
                                    let key = encoder::out_cell_key(&out_shape, &qc);
                                    if let Some(value) = db.peek(&key) {
                                        out.covered.insert(&qc);
                                        out.entries_fetched += 1;
                                        for payload in decode_payloads(&value).unwrap_or_default() {
                                            for c in op
                                                .map_payload(&qc, &payload, input_idx, meta)
                                                .unwrap_or_default()
                                            {
                                                out.result.insert(&c);
                                            }
                                        }
                                    }
                                }
                                out
                            })
                            .collect()
                    },
                ))
            }
            (LineageMode::Pay | LineageMode::Comp, _, Granularity::Many) => flatten(
                parallel::parallel_chunks_stateful(queries, pay_caches, 2, |_, cache, shard| {
                    shard
                        .iter()
                        .map(|query| {
                            let mut out = empty_outcome();
                            for id in candidate_entries(rtree, query) {
                                let (present, entry) = cache
                                    .get(db, id, |body| decode_pay_entry(&out_shape, body).ok());
                                if present {
                                    out.entries_fetched += 1;
                                }
                                let Some(entry) = entry else { continue };
                                for oc in entry.outcells.iter().filter(|c| query.contains(c)) {
                                    out.covered.insert(oc);
                                    for c in op
                                        .map_payload(oc, &entry.payload, input_idx, meta)
                                        .unwrap_or_default()
                                    {
                                        out.result.insert(&c);
                                    }
                                }
                            }
                            out
                        })
                        .collect()
                }),
            ),
            // --- Mismatched index: forward-optimized store, backward query --
            (LineageMode::Full, Direction::Forward, Granularity::One) => {
                // One streamed, zero-copy scan decodes the input-cell records
                // and the entry bodies into a shared columnar frame (the
                // decode fans out per block); the parallel per-query join
                // below answers every query in linear-index space, never
                // materialising a coordinate.
                let sd = scan_full_decode(
                    db,
                    &out_shape,
                    in_shapes,
                    input_idx,
                    RecordSide::InCells,
                    workers,
                );
                // Resolve each record's entry ids against the decoded map
                // once, into one flat (cell, runs) join list; the per-query
                // join then streams plain run handles with no hash lookups.
                let entries: FxHashMap<u64, Option<FullEntryRuns>> =
                    sd.entries.iter().copied().collect();
                let mut resolved: Vec<(u64, Option<FullEntryRuns>)> =
                    Vec::with_capacity(sd.records.len());
                for &(cell, start, len) in &sd.records {
                    for id in sd.record_ids(start, len) {
                        if let Some(&runs) = entries.get(id) {
                            resolved.push((cell, runs));
                        }
                    }
                }
                let frame = &sd.frame;
                parallel::parallel_map_min(queries, workers, 2, |_, query| {
                    let mut out = empty_outcome();
                    out.scanned = true;
                    let mut hits: Vec<u64> = Vec::new();
                    // Hits accumulate in flat vectors across the whole scan
                    // and merge into the answer containers once at the end:
                    // a per-entry container merge would re-splice the
                    // accumulated set once per matching record.
                    // One densified clone of the query turns the
                    // thousands of per-record membership probes below into
                    // O(1) word tests; the few-KiB promotion cost amortises
                    // over the whole scan.
                    let probe = {
                        let mut p = CellSet::clone(query);
                        p.densify();
                        p
                    };
                    let mut covered_acc: Vec<u64> = Vec::new();
                    let mut result_acc: Vec<u64> = Vec::new();
                    for &(cell, runs) in &resolved {
                        out.entries_fetched += 1;
                        let Some(runs) = runs else { continue };
                        hits.clear();
                        // Intersect the query's containers against the
                        // record's sorted scan indices (word probes on dense
                        // chunks, tail bisection on sparse/run chunks)
                        // instead of testing a bitmap per index.
                        if probe.intersect_sorted(frame.run(runs.outcells), |oc| hits.push(oc)) {
                            covered_acc.extend_from_slice(&hits);
                            result_acc.push(cell);
                        }
                    }
                    covered_acc.sort_unstable();
                    covered_acc.dedup();
                    out.covered.insert_sorted(&covered_acc);
                    result_acc.sort_unstable();
                    result_acc.dedup();
                    out.result.insert_sorted(&result_acc);
                    out
                })
            }
            (LineageMode::Full, Direction::Forward, Granularity::Many) => {
                let sd = scan_full_decode(
                    db,
                    &out_shape,
                    in_shapes,
                    input_idx,
                    RecordSide::InCells,
                    workers,
                );
                let frame = &sd.frame;
                parallel::parallel_map_min(queries, workers, 2, |_, query| {
                    let mut out = empty_outcome();
                    out.scanned = true;
                    let mut hits: Vec<u64> = Vec::new();
                    // One densified clone of the query turns the
                    // thousands of per-record membership probes below into
                    // O(1) word tests; the few-KiB promotion cost amortises
                    // over the whole scan.
                    let probe = {
                        let mut p = CellSet::clone(query);
                        p.densify();
                        p
                    };
                    let mut covered_acc: Vec<u64> = Vec::new();
                    let mut result_acc: Vec<u64> = Vec::new();
                    for &(_, runs) in &sd.entries {
                        out.entries_fetched += 1;
                        let Some(runs) = runs else { continue };
                        hits.clear();
                        if probe.intersect_sorted(frame.run(runs.outcells), |oc| hits.push(oc)) {
                            covered_acc.extend_from_slice(&hits);
                            // The whole record matched: every input cell
                            // joins the flat accumulator.
                            result_acc.extend_from_slice(frame.run(runs.incells));
                        }
                    }
                    covered_acc.sort_unstable();
                    covered_acc.dedup();
                    out.covered.insert_sorted(&covered_acc);
                    result_acc.sort_unstable();
                    result_acc.dedup();
                    out.result.insert_sorted(&result_acc);
                    out
                })
            }
            (LineageMode::Map | LineageMode::Blackbox, _, _) => {
                // These strategies store nothing; the query executor never
                // routes lookups here, but returning empty outcomes keeps the
                // datastore total.
                queries.iter().map(|_| empty_outcome()).collect()
            }
        }
    }

    /// Answers a whole batch of forward lookups in one pass; the batched
    /// counterpart of [`lookup_forward`](OpDatastore::lookup_forward) (see
    /// [`lookup_backward_many`](OpDatastore::lookup_backward_many) for the
    /// sharing and the worker fan-out the batch exploits).
    pub fn lookup_forward_many(
        &mut self,
        queries: &[&CellSet],
        input_idx: usize,
        op: &dyn Operator,
        meta: &OpMeta,
    ) -> Vec<LookupOutcome> {
        self.ensure_spatial_index();
        if queries.is_empty() {
            return Vec::new();
        }
        let out_shape = self.out_shape;
        let in_shapes = self.in_shapes.clone();
        let in_shapes = &in_shapes;
        let workers = self.workers;
        let db = &self.db;
        let rtree = self.rtree.as_ref();
        let full_caches = cache_shards(&mut self.full_caches, workers, queries.len());
        let empty_outcome = || LookupOutcome {
            result: CellSet::empty(out_shape),
            covered: CellSet::empty(in_shapes[input_idx]),
            entries_fetched: 0,
            scanned: false,
        };

        match (
            self.strategy.mode,
            self.strategy.direction,
            self.strategy.granularity,
        ) {
            // --- Indexed (forward-optimized) paths ---------------------------
            (LineageMode::Full, Direction::Forward, Granularity::One) => flatten(
                parallel::parallel_chunks_stateful(queries, full_caches, 2, |_, cache, shard| {
                    shard
                        .iter()
                        .map(|query| {
                            let mut out = empty_outcome();
                            for qc in query.iter() {
                                let key =
                                    encoder::in_cell_key(&in_shapes[input_idx], input_idx, &qc);
                                let Some(value) = db.peek(&key) else {
                                    continue;
                                };
                                out.covered.insert(&qc);
                                for id in decode_entry_ids(&value).unwrap_or_default() {
                                    let (present, entry) = cache.get(db, id, |body| {
                                        decode_full_entry(&out_shape, in_shapes, body).ok()
                                    });
                                    if present {
                                        out.entries_fetched += 1;
                                    }
                                    if let Some(entry) = entry {
                                        for c in &entry.outcells {
                                            out.result.insert(c);
                                        }
                                    }
                                }
                            }
                            out
                        })
                        .collect()
                }),
            ),
            (LineageMode::Full, Direction::Forward, Granularity::Many) => flatten(
                parallel::parallel_chunks_stateful(queries, full_caches, 2, |_, cache, shard| {
                    shard
                        .iter()
                        .map(|query| {
                            let mut out = empty_outcome();
                            for id in candidate_entries(rtree, query) {
                                let (present, entry) = cache.get(db, id, |body| {
                                    decode_full_entry(&out_shape, in_shapes, body).ok()
                                });
                                if present {
                                    out.entries_fetched += 1;
                                }
                                let Some(entry) = entry else { continue };
                                let hits: Vec<&Coord> = entry
                                    .incells
                                    .get(input_idx)
                                    .into_iter()
                                    .flatten()
                                    .filter(|c| query.contains(c))
                                    .collect();
                                if !hits.is_empty() {
                                    for c in &hits {
                                        out.covered.insert(c);
                                    }
                                    for c in &entry.outcells {
                                        out.result.insert(c);
                                    }
                                }
                            }
                            out
                        })
                        .collect()
                }),
            ),
            // --- Mismatched index: backward-optimized store, forward query ---
            (LineageMode::Full, Direction::Backward, Granularity::One) => {
                let sd = scan_full_decode(
                    db,
                    &out_shape,
                    in_shapes,
                    input_idx,
                    RecordSide::OutCells,
                    workers,
                );
                let entries: FxHashMap<u64, Option<FullEntryRuns>> =
                    sd.entries.iter().copied().collect();
                let mut resolved: Vec<(u64, Option<FullEntryRuns>)> =
                    Vec::with_capacity(sd.records.len());
                for &(oc, start, len) in &sd.records {
                    for id in sd.record_ids(start, len) {
                        if let Some(&runs) = entries.get(id) {
                            resolved.push((oc, runs));
                        }
                    }
                }
                let frame = &sd.frame;
                parallel::parallel_map_min(queries, workers, 2, |_, query| {
                    let mut out = empty_outcome();
                    out.scanned = true;
                    let mut hits: Vec<u64> = Vec::new();
                    // One densified clone of the query turns the
                    // thousands of per-record membership probes below into
                    // O(1) word tests; the few-KiB promotion cost amortises
                    // over the whole scan.
                    let probe = {
                        let mut p = CellSet::clone(query);
                        p.densify();
                        p
                    };
                    let mut covered_acc: Vec<u64> = Vec::new();
                    let mut result_acc: Vec<u64> = Vec::new();
                    for &(oc, runs) in &resolved {
                        out.entries_fetched += 1;
                        let Some(runs) = runs else { continue };
                        hits.clear();
                        if probe.intersect_sorted(frame.run(runs.incells), |c| hits.push(c)) {
                            covered_acc.extend_from_slice(&hits);
                            result_acc.push(oc);
                        }
                    }
                    covered_acc.sort_unstable();
                    covered_acc.dedup();
                    out.covered.insert_sorted(&covered_acc);
                    result_acc.sort_unstable();
                    result_acc.dedup();
                    out.result.insert_sorted(&result_acc);
                    out
                })
            }
            (LineageMode::Full, Direction::Backward, Granularity::Many) => {
                let sd = scan_full_decode(
                    db,
                    &out_shape,
                    in_shapes,
                    input_idx,
                    RecordSide::OutCells,
                    workers,
                );
                let frame = &sd.frame;
                parallel::parallel_map_min(queries, workers, 2, |_, query| {
                    let mut out = empty_outcome();
                    out.scanned = true;
                    let mut hits: Vec<u64> = Vec::new();
                    // One densified clone of the query turns the
                    // thousands of per-record membership probes below into
                    // O(1) word tests; the few-KiB promotion cost amortises
                    // over the whole scan.
                    let probe = {
                        let mut p = CellSet::clone(query);
                        p.densify();
                        p
                    };
                    let mut covered_acc: Vec<u64> = Vec::new();
                    let mut result_acc: Vec<u64> = Vec::new();
                    for &(_, runs) in &sd.entries {
                        out.entries_fetched += 1;
                        let Some(runs) = runs else { continue };
                        hits.clear();
                        if probe.intersect_sorted(frame.run(runs.incells), |c| hits.push(c)) {
                            covered_acc.extend_from_slice(&hits);
                            result_acc.extend_from_slice(frame.run(runs.outcells));
                        }
                    }
                    covered_acc.sort_unstable();
                    covered_acc.dedup();
                    out.covered.insert_sorted(&covered_acc);
                    result_acc.sort_unstable();
                    result_acc.dedup();
                    out.result.insert_sorted(&result_acc);
                    out
                })
            }
            // --- Payload lineage: always requires iterating the pairs --------
            (LineageMode::Pay | LineageMode::Comp, _, Granularity::One) => {
                // One streamed scan collects the output-cell records, then
                // the mapping function runs once per stored (cell, payload)
                // region — fanned across the workers — and the parallel
                // per-query join consumes the precomputed regions.
                let mut records: Vec<(Coord, Vec<Vec<u8>>)> = Vec::new();
                db.scan_slices(SCAN_BLOCK, &mut |block| {
                    records.extend(
                        parallel::parallel_map(block, workers, |_, (key, value)| match decode_key(
                            &out_shape, in_shapes, key,
                        ) {
                            Ok(DecodedKey::OutCell(oc)) => {
                                Some((oc, decode_payloads(value).unwrap_or_default()))
                            }
                            _ => None,
                        })
                        .into_iter()
                        .flatten(),
                    );
                });
                let mapped: Vec<(Coord, Vec<Vec<Coord>>)> =
                    parallel::parallel_map(&records, workers, |_, (oc, payloads)| {
                        (
                            *oc,
                            payloads
                                .iter()
                                .map(|p| op.map_payload(oc, p, input_idx, meta).unwrap_or_default())
                                .collect(),
                        )
                    });
                parallel::parallel_map_min(queries, workers, 2, |_, query| {
                    let mut out = empty_outcome();
                    out.scanned = true;
                    for (oc, regions) in &mapped {
                        out.entries_fetched += 1;
                        for incells in regions {
                            let hits: Vec<&Coord> =
                                incells.iter().filter(|c| query.contains(c)).collect();
                            if !hits.is_empty() {
                                out.result.insert(oc);
                                for c in &hits {
                                    out.covered.insert(c);
                                }
                            }
                        }
                    }
                    out
                })
            }
            (LineageMode::Pay | LineageMode::Comp, _, Granularity::Many) => {
                let mut scanned: Vec<Option<PayEntry>> = Vec::new();
                db.scan_slices(SCAN_BLOCK, &mut |block| {
                    scanned.extend(
                        parallel::parallel_map(block, workers, |_, (key, body)| {
                            if matches!(
                                decode_key(&out_shape, in_shapes, key),
                                Ok(DecodedKey::Entry(_))
                            ) {
                                Some(decode_pay_entry(&out_shape, body).ok())
                            } else {
                                None
                            }
                        })
                        .into_iter()
                        .flatten(),
                    );
                });
                // Resolve the mapping function once per stored output cell,
                // in parallel, before the per-query join.
                let mapped: Vec<Option<MappedRegions>> =
                    parallel::parallel_map(&scanned, workers, |_, entry| {
                        entry.as_ref().map(|e| {
                            e.outcells
                                .iter()
                                .map(|oc| {
                                    (
                                        *oc,
                                        op.map_payload(oc, &e.payload, input_idx, meta)
                                            .unwrap_or_default(),
                                    )
                                })
                                .collect()
                        })
                    });
                parallel::parallel_map_min(queries, workers, 2, |_, query| {
                    let mut out = empty_outcome();
                    out.scanned = true;
                    for regions in &mapped {
                        out.entries_fetched += 1;
                        let Some(regions) = regions else { continue };
                        for (oc, incells) in regions {
                            let hits: Vec<&Coord> =
                                incells.iter().filter(|c| query.contains(c)).collect();
                            if !hits.is_empty() {
                                out.result.insert(oc);
                                for c in &hits {
                                    out.covered.insert(c);
                                }
                            }
                        }
                    }
                    out
                })
            }
            (LineageMode::Map | LineageMode::Blackbox, _, _) => {
                queries.iter().map(|_| empty_outcome()).collect()
            }
        }
    }
}

/// Flattens per-shard outcome vectors back into query order.
fn flatten(shards: Vec<Vec<LookupOutcome>>) -> Vec<LookupOutcome> {
    shards.into_iter().flatten().collect()
}

/// One stored payload entry's resolved regions: each output cell paired with
/// the input cells its mapping function produced.
type MappedRegions = Vec<(Coord, Vec<Coord>)>;

/// Which cell-keyed record space of a mismatched scan feeds the join (the
/// entry-keyed records are always decoded).
#[derive(Clone, Copy)]
enum RecordSide {
    /// Backward-optimized store: output-cell records.
    OutCells,
    /// Forward-optimized store: the queried input's input-cell records.
    InCells,
}

/// The columnar result of one streamed scan over a `Full` datastore: every
/// decoded cell lives as a linear index in one flat [`ScanFrame`], and the
/// records/entries hold [`FullEntryRuns`] run handles into it instead of a
/// `Vec<Coord>` per entry.
#[derive(Default)]
struct ScanDecode {
    /// The flat cell-index column every run below points into.
    frame: ScanFrame,
    /// Every record's entry-id list, concatenated.
    ids: Vec<u64>,
    /// Cell-keyed records in scan order: the cell's linear index and its
    /// id span in `ids`.
    records: Vec<(u64, u32, u32)>,
    /// Entry-keyed records in scan order (`None` where the body failed to
    /// decode, so fetch accounting still sees the record).
    entries: Vec<(u64, Option<FullEntryRuns>)>,
}

impl ScanDecode {
    /// Appends a chunk-local decode, rebasing its runs and id spans into
    /// this decode's flat buffers.
    fn merge(&mut self, part: ScanDecode) {
        let base = self.frame.append(&part.frame);
        let id_base = self.ids.len() as u32;
        self.ids.extend_from_slice(&part.ids);
        self.records.extend(
            part.records
                .iter()
                .map(|&(cell, start, len)| (cell, start + id_base, len)),
        );
        self.entries
            .extend(part.entries.into_iter().map(|(id, runs)| {
                (
                    id,
                    runs.map(|r| FullEntryRuns {
                        outcells: r.outcells.rebased(base),
                        incells: r.incells.rebased(base),
                    }),
                )
            }));
    }

    /// The entry-id slice of one cell record.
    fn record_ids(&self, start: u32, len: u32) -> &[u64] {
        &self.ids[start as usize..(start + len) as usize]
    }
}

/// Streams the whole database once through the zero-copy
/// [`Database::scan_slices`] path, decoding every record of interest into one
/// columnar [`ScanDecode`]: per scan block the raw records fan out across the
/// workers in contiguous chunks (each building a private frame), and the
/// chunks merge back in scan order — so the result is deterministic at any
/// worker count, and no per-entry `Vec` is ever allocated.
fn scan_full_decode(
    db: &Database,
    out_shape: &Shape,
    in_shapes: &[Shape],
    input_idx: usize,
    records_from: RecordSide,
    workers: usize,
) -> ScanDecode {
    let out_cells = out_shape.num_cells() as u64;
    let in_cells: Vec<u64> = in_shapes.iter().map(|s| s.num_cells() as u64).collect();
    let in_cells = &in_cells;
    let mut global = ScanDecode::default();
    db.scan_slices(SCAN_BLOCK, &mut |block| {
        for part in parallel::parallel_chunks(block, workers, 64, |_, chunk| {
            let mut part = ScanDecode::default();
            for &(key, value) in chunk {
                match decode_key_linear(out_cells, in_cells, key) {
                    Ok(DecodedKeyLinear::Entry(id)) => {
                        let runs = decode_full_entry_frame(
                            &mut part.frame,
                            out_cells,
                            in_cells,
                            input_idx,
                            value,
                        )
                        .ok();
                        part.entries.push((id, runs));
                    }
                    Ok(DecodedKeyLinear::OutCell(cell))
                        if matches!(records_from, RecordSide::OutCells) =>
                    {
                        let start = part.ids.len() as u32;
                        // A torn value decodes to no ids, exactly as the
                        // legacy row decoder treated it.
                        let _ = decode_entry_ids_into(&mut part.ids, value);
                        part.records
                            .push((cell, start, part.ids.len() as u32 - start));
                    }
                    Ok(DecodedKeyLinear::InCell {
                        input_idx: i,
                        index,
                    }) if matches!(records_from, RecordSide::InCells) && i == input_idx => {
                        let start = part.ids.len() as u32;
                        let _ = decode_entry_ids_into(&mut part.ids, value);
                        part.records
                            .push((index, start, part.ids.len() as u32 - start));
                    }
                    _ => {}
                }
            }
            part
        }) {
            global.merge(part);
        }
    });
    global
}

/// Entry ids whose key-side bounding box intersects any query cell,
/// according to the R-tree (a superset: exact membership is re-checked
/// after decoding).
fn candidate_entries(tree: Option<&RTree>, query: &CellSet) -> Vec<u64> {
    let Some(tree) = tree else {
        return Vec::new();
    };
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    // Query the R-tree with the bounding box of the query cells first; if
    // the query is small, per-cell point queries are more selective.
    if query.len() <= 64 {
        for c in query.iter() {
            for id in tree.query_point(&c) {
                if seen.insert(id) {
                    out.push(id);
                }
            }
        }
    } else {
        let coords = query.to_coords();
        if let Some(bbox) = BoundingBox::enclosing(&coords) {
            for id in tree.query(&bbox) {
                if seen.insert(id) {
                    out.push(id);
                }
            }
        }
    }
    out
}

impl std::fmt::Debug for OpDatastore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpDatastore")
            .field("strategy", &self.strategy.label())
            .field("pairs", &self.pairs_stored)
            .field("bytes", &self.bytes_used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subzero_array::{Array, ArrayRef};
    use subzero_engine::{LineageSink, OpId};

    /// A toy payload operator: payload byte r means "depends on the
    /// neighbourhood of radius r around the output cell".
    struct RadiusOp;

    impl Operator for RadiusOp {
        fn name(&self) -> &str {
            "radius"
        }
        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }
        fn run(&self, inputs: &[ArrayRef], _m: &[LineageMode], _s: &mut dyn LineageSink) -> Array {
            (*inputs[0]).clone()
        }
        fn map_payload(
            &self,
            outcell: &Coord,
            payload: &[u8],
            _i: usize,
            meta: &OpMeta,
        ) -> Option<Vec<Coord>> {
            let r = payload.first().copied().unwrap_or(0) as u32;
            Some(meta.input_shape(0).neighborhood(outcell, r))
        }
        fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
            Some(vec![*outcell])
        }
    }

    fn meta() -> OpMeta {
        OpMeta::new(vec![Shape::d2(8, 8), Shape::d2(8, 8)], Shape::d2(8, 8))
    }

    fn full_pair(out: &[Coord], in0: &[Coord], in1: &[Coord]) -> RegionPair {
        RegionPair::Full {
            outcells: out.to_vec(),
            incells: vec![in0.to_vec(), in1.to_vec()],
        }
    }

    fn query_of(shape: Shape, cells: &[Coord]) -> CellSet {
        CellSet::from_coords(shape, cells.iter().copied())
    }

    const _: OpId = 0;

    fn full_strategies() -> Vec<StorageStrategy> {
        vec![
            StorageStrategy::full_one(),
            StorageStrategy::full_many(),
            StorageStrategy::full_one_forward(),
            StorageStrategy::full_many_forward(),
        ]
    }

    #[test]
    fn full_strategies_answer_backward_and_forward_lookups() {
        let m = meta();
        let op = RadiusOp;
        for strategy in full_strategies() {
            let mut ds = OpDatastore::in_memory("t", strategy, &m);
            ds.store_pair(&full_pair(
                &[Coord::d2(0, 0), Coord::d2(0, 1)],
                &[Coord::d2(1, 1), Coord::d2(1, 2)],
                &[Coord::d2(7, 7)],
            ));
            ds.store_pair(&full_pair(&[Coord::d2(5, 5)], &[Coord::d2(6, 6)], &[]));
            assert_eq!(ds.pairs_stored(), 2);

            // Backward: lineage of (0,1) in input 0 is {(1,1),(1,2)}.
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(0, 1)]);
            let out = ds.lookup_backward(&q, 0, &op, &m);
            assert_eq!(
                out.result.to_coords(),
                vec![Coord::d2(1, 1), Coord::d2(1, 2)],
                "strategy {strategy}"
            );
            assert!(out.covered.contains(&Coord::d2(0, 1)));
            // Backward in input 1.
            let out1 = ds.lookup_backward(&q, 1, &op, &m);
            assert_eq!(out1.result.to_coords(), vec![Coord::d2(7, 7)]);

            // Forward: input cell (6,6) of input 0 influenced output (5,5).
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(6, 6)]);
            let out = ds.lookup_forward(&q, 0, &op, &m);
            assert_eq!(
                out.result.to_coords(),
                vec![Coord::d2(5, 5)],
                "strategy {strategy}"
            );
            // Forward query for a cell with no lineage is empty.
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(0, 0)]);
            let out = ds.lookup_forward(&q, 0, &op, &m);
            assert!(out.result.is_empty(), "strategy {strategy}");
        }
    }

    #[test]
    fn mismatched_direction_falls_back_to_scan() {
        let m = meta();
        let op = RadiusOp;
        // Backward-optimized store, forward query => scan.
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(2, 2)], &[Coord::d2(3, 3)], &[]));
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(3, 3)]);
        let out = ds.lookup_forward(&q, 0, &op, &m);
        assert!(out.scanned);
        assert_eq!(out.result.to_coords(), vec![Coord::d2(2, 2)]);

        // Forward-optimized store, backward query => scan.
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one_forward(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(2, 2)], &[Coord::d2(3, 3)], &[]));
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(2, 2)]);
        let out = ds.lookup_backward(&q, 0, &op, &m);
        assert!(out.scanned);
        assert_eq!(out.result.to_coords(), vec![Coord::d2(3, 3)]);

        // Matched directions never scan.
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_many(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(2, 2)], &[Coord::d2(3, 3)], &[]));
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(2, 2)]);
        assert!(!ds.lookup_backward(&q, 0, &op, &m).scanned);
    }

    #[test]
    fn payload_strategies_use_map_payload() {
        let m = meta();
        let op = RadiusOp;
        for strategy in [StorageStrategy::pay_one(), StorageStrategy::pay_many()] {
            let mut ds = OpDatastore::in_memory("t", strategy, &m);
            // Cell (4,4) has radius-1 lineage; cell (0,0) has radius-0.
            ds.store_pair(&RegionPair::Payload {
                outcells: vec![Coord::d2(4, 4)],
                payload: vec![1],
            });
            ds.store_pair(&RegionPair::Payload {
                outcells: vec![Coord::d2(0, 0)],
                payload: vec![0],
            });
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(4, 4)]);
            let out = ds.lookup_backward(&q, 0, &op, &m);
            assert_eq!(out.result.len(), 9, "strategy {strategy}");
            assert!(out.covered.contains(&Coord::d2(4, 4)));

            let q = query_of(Shape::d2(8, 8), &[Coord::d2(0, 0)]);
            let out = ds.lookup_backward(&q, 0, &op, &m);
            assert_eq!(out.result.to_coords(), vec![Coord::d2(0, 0)]);

            // Forward payload queries iterate all pairs.
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(3, 4)]);
            let out = ds.lookup_forward(&q, 0, &op, &m);
            assert!(out.scanned);
            assert_eq!(out.result.to_coords(), vec![Coord::d2(4, 4)]);
        }
    }

    #[test]
    fn composite_reports_uncovered_cells() {
        let m = meta();
        let op = RadiusOp;
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::composite_one(), &m);
        // Only the "exceptional" cell stores a payload pair.
        ds.store_pair(&RegionPair::Payload {
            outcells: vec![Coord::d2(6, 6)],
            payload: vec![2],
        });
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(6, 6), Coord::d2(1, 1)]);
        let out = ds.lookup_backward(&q, 0, &op, &m);
        assert!(out.covered.contains(&Coord::d2(6, 6)));
        assert!(!out.covered.contains(&Coord::d2(1, 1)));
        // The covered cell contributed its radius-2 neighbourhood (clipped).
        assert!(out.result.len() >= 9);
    }

    #[test]
    fn payload_one_duplicates_payload_per_cell() {
        let m = meta();
        let mut one = OpDatastore::in_memory("one", StorageStrategy::pay_one(), &m);
        let mut many = OpDatastore::in_memory("many", StorageStrategy::pay_many(), &m);
        let outcells: Vec<Coord> = (0..8).map(|i| Coord::d2(3, i)).collect();
        let pair = RegionPair::Payload {
            outcells,
            payload: vec![42; 16],
        };
        one.store_pair(&pair);
        many.store_pair(&pair);
        // PayOne stores 8 copies of the payload; PayMany stores one entry
        // (plus the R-tree).  The hash-entry bytes alone must be larger for
        // PayOne.
        assert!(one.db.bytes_used() > many.db.bytes_used());
        assert_eq!(one.num_entries(), 8);
        assert_eq!(many.num_entries(), 1);
    }

    #[test]
    fn full_one_vs_full_many_storage_tradeoff() {
        let m = meta();
        // High fanout: many output cells share the same input cells.  The
        // FullMany encoding stores the output cells once; FullOne duplicates
        // a hash entry per output cell.
        let outcells: Vec<Coord> = Shape::d2(8, 8).iter().take(48).collect();
        let incells = vec![Coord::d2(0, 0), Coord::d2(0, 1)];
        let pair = full_pair(&outcells, &incells, &[]);
        let mut one = OpDatastore::in_memory("one", StorageStrategy::full_one(), &m);
        let mut many = OpDatastore::in_memory("many", StorageStrategy::full_many(), &m);
        one.store_pair(&pair);
        many.store_pair(&pair);
        assert!(one.num_entries() > many.num_entries());
        assert!(one.db.bytes_used() > many.db.bytes_used());
    }

    #[test]
    fn wrong_pair_kind_is_ignored() {
        let m = meta();
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one(), &m);
        ds.store_pair(&RegionPair::Payload {
            outcells: vec![Coord::d2(0, 0)],
            payload: vec![1],
        });
        assert_eq!(ds.pairs_stored(), 0);
        assert_eq!(ds.num_entries(), 0);

        let mut ds = OpDatastore::in_memory("t", StorageStrategy::pay_one(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(0, 0)], &[Coord::d2(1, 1)], &[]));
        assert_eq!(ds.pairs_stored(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let m = meta();
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_many(), &m);
        assert_eq!(ds.bytes_used(), 0);
        for i in 0..10u32 {
            ds.store_pair(&full_pair(
                &[Coord::d2(i % 8, 0)],
                &[Coord::d2(i % 8, 1), Coord::d2(i % 8, 2)],
                &[],
            ));
        }
        assert_eq!(ds.pairs_stored(), 10);
        assert_eq!(ds.cells_stored(), 30);
        assert!(ds.bytes_used() > 0);
        assert!(ds.encode_time() > Duration::ZERO);
        assert_eq!(ds.strategy(), StorageStrategy::full_many());
    }

    #[test]
    fn empty_pairs_are_skipped() {
        let m = meta();
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one(), &m);
        ds.store_pair(&full_pair(&[], &[Coord::d2(0, 0)], &[]));
        assert_eq!(ds.num_entries(), 0);
    }

    /// A deterministic mixed workload of full and payload pairs, including
    /// shared output cells (key collisions), empty-outcell pairs and pairs of
    /// the "wrong" kind for the strategy under test.
    fn mixed_pairs() -> Vec<RegionPair> {
        let mut pairs = Vec::new();
        for i in 0..40u32 {
            let base = Coord::d2(i % 8, (i * 3) % 8);
            let shared = Coord::d2(0, 0);
            pairs.push(full_pair(
                &[base, shared],
                &[Coord::d2((i + 1) % 8, i % 8), Coord::d2(i % 8, (i + 5) % 8)],
                &[Coord::d2(7 - i % 8, 7 - i % 8)],
            ));
            pairs.push(RegionPair::Payload {
                outcells: vec![base],
                payload: vec![(i % 3) as u8, i as u8],
            });
        }
        pairs.push(full_pair(&[], &[Coord::d2(1, 1)], &[]));
        pairs.push(RegionPair::Payload {
            outcells: vec![],
            payload: vec![9],
        });
        pairs
    }

    fn all_strategies() -> Vec<StorageStrategy> {
        vec![
            StorageStrategy::full_one(),
            StorageStrategy::full_many(),
            StorageStrategy::full_one_forward(),
            StorageStrategy::full_many_forward(),
            StorageStrategy::pay_one(),
            StorageStrategy::pay_many(),
            StorageStrategy::composite_one(),
            StorageStrategy::composite_many(),
        ]
    }

    #[test]
    fn store_batch_matches_store_pair_byte_for_byte() {
        let m = meta();
        let pairs = mixed_pairs();
        for strategy in all_strategies() {
            for (label, batch_sizes) in [("batch64", vec![64]), ("batch7", vec![7])] {
                let mut reference = OpDatastore::in_memory("ref", strategy, &m);
                for pair in &pairs {
                    reference.store_pair(pair);
                }
                let mut batched = OpDatastore::in_memory("bat", strategy, &m);
                for chunk in pairs.chunks(batch_sizes[0]) {
                    batched.store_batch(chunk, 2);
                }
                assert_eq!(
                    batched.snapshot(),
                    reference.snapshot(),
                    "contents differ for {strategy} ({label})"
                );
                assert_eq!(batched.pairs_stored(), reference.pairs_stored());
                assert_eq!(batched.cells_stored(), reference.cells_stored());
                assert_eq!(batched.num_entries(), reference.num_entries());
            }
        }
    }

    #[test]
    fn store_batch_answers_queries_like_store_pair() {
        let m = meta();
        let op = RadiusOp;
        let pairs = mixed_pairs();
        let shape = Shape::d2(8, 8);
        for strategy in all_strategies() {
            let mut reference = OpDatastore::in_memory("ref", strategy, &m);
            for pair in &pairs {
                reference.store_pair(pair);
            }
            let mut batched = OpDatastore::in_memory("bat", strategy, &m);
            batched.store_batch(&pairs, 1);
            for i in 0..8 {
                let q = query_of(shape, &[Coord::d2(i, i), Coord::d2(i, 7 - i)]);
                let a = batched.lookup_backward(&q, 0, &op, &m);
                let b = reference.lookup_backward(&q, 0, &op, &m);
                assert_eq!(
                    a.result.to_coords(),
                    b.result.to_coords(),
                    "backward differs for {strategy}"
                );
                assert_eq!(a.covered.to_coords(), b.covered.to_coords());
                let a = batched.lookup_forward(&q, 0, &op, &m);
                let b = reference.lookup_forward(&q, 0, &op, &m);
                assert_eq!(
                    a.result.to_coords(),
                    b.result.to_coords(),
                    "forward differs for {strategy}"
                );
            }
        }
    }

    #[test]
    fn store_batch_then_store_pair_share_entry_ids() {
        // Ids allocated by a batch and by later per-pair stores never clash,
        // and late arrivals after the index was bulk-loaded are still found.
        let m = meta();
        let op = RadiusOp;
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_many(), &m);
        ds.store_batch(&[full_pair(&[Coord::d2(1, 1)], &[Coord::d2(2, 2)], &[])], 1);
        // Build the index, then add a straggler through the per-pair path.
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(1, 1)]);
        assert_eq!(
            ds.lookup_backward(&q, 0, &op, &m).result.to_coords(),
            vec![Coord::d2(2, 2)]
        );
        ds.store_pair(&full_pair(&[Coord::d2(5, 5)], &[Coord::d2(6, 6)], &[]));
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(5, 5)]);
        assert_eq!(
            ds.lookup_backward(&q, 0, &op, &m).result.to_coords(),
            vec![Coord::d2(6, 6)]
        );
        assert_eq!(ds.pairs_stored(), 2);
    }

    #[test]
    fn lookup_many_matches_one_at_a_time_lookups() {
        // Batched multi-query lookups must return, per query, exactly what a
        // fresh one-at-a-time lookup returns — for every strategy, in both
        // directions, including the mismatched-direction scan paths and
        // queries that share hash entries.
        let m = meta();
        let op = RadiusOp;
        let pairs = mixed_pairs();
        let shape = Shape::d2(8, 8);
        let query_sets: Vec<CellSet> = (0..6)
            .map(|i| {
                query_of(
                    shape,
                    &[
                        Coord::d2(i, i),
                        Coord::d2(i, 7 - i),
                        Coord::d2(0, 0), // shared across all queries
                        Coord::d2((i * 3) % 8, 1),
                    ],
                )
            })
            .collect();
        let refs: Vec<&CellSet> = query_sets.iter().collect();
        for strategy in all_strategies() {
            let mut ds = OpDatastore::in_memory("t", strategy, &m);
            ds.store_batch(&pairs, 1);
            for input_idx in 0..2 {
                let many = ds.lookup_backward_many(&refs, input_idx, &op, &m);
                assert_eq!(many.len(), refs.len());
                for (q, outcome) in query_sets.iter().zip(&many) {
                    let single = ds.lookup_backward(q, input_idx, &op, &m);
                    assert_eq!(
                        outcome.result.to_coords(),
                        single.result.to_coords(),
                        "backward result differs for {strategy} input {input_idx}"
                    );
                    assert_eq!(outcome.covered.to_coords(), single.covered.to_coords());
                    assert_eq!(outcome.scanned, single.scanned, "scanned flag {strategy}");
                    assert_eq!(
                        outcome.entries_fetched, single.entries_fetched,
                        "fetch accounting differs for {strategy} input {input_idx}"
                    );
                }
                let many = ds.lookup_forward_many(&refs, input_idx, &op, &m);
                for (q, outcome) in query_sets.iter().zip(&many) {
                    let single = ds.lookup_forward(q, input_idx, &op, &m);
                    assert_eq!(
                        outcome.result.to_coords(),
                        single.result.to_coords(),
                        "forward result differs for {strategy} input {input_idx}"
                    );
                    assert_eq!(outcome.covered.to_coords(), single.covered.to_coords());
                    assert_eq!(outcome.scanned, single.scanned);
                    assert_eq!(outcome.entries_fetched, single.entries_fetched);
                }
            }
        }
    }

    #[test]
    fn lookup_many_shares_scans_on_file_backend() {
        // The batched mismatched-direction lookup over the file backend must
        // agree with singles (exercises FileBackend::scan_batch's sequential
        // path end to end).
        let dir = std::env::temp_dir().join(format!("subzero-ds-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = meta();
        let op = RadiusOp;
        let backend = subzero_store::kv::FileBackend::open(&dir.join("scan.kv")).unwrap();
        let mut ds = OpDatastore::new(
            "t",
            StorageStrategy::full_one_forward(),
            &m,
            Box::new(backend),
        );
        ds.store_batch(&mixed_pairs(), 1);
        ds.finish_ingest();
        let shape = Shape::d2(8, 8);
        let query_sets: Vec<CellSet> = (0..4)
            .map(|i| query_of(shape, &[Coord::d2(i, i), Coord::d2(i + 1, i)]))
            .collect();
        let refs: Vec<&CellSet> = query_sets.iter().collect();
        let many = ds.lookup_backward_many(&refs, 0, &op, &m);
        for (q, outcome) in query_sets.iter().zip(&many) {
            assert!(outcome.scanned, "mismatched direction must scan");
            let single = ds.lookup_backward(q, 0, &op, &m);
            assert_eq!(outcome.result.to_coords(), single.result.to_coords());
            assert_eq!(outcome.covered.to_coords(), single.covered.to_coords());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_many_with_empty_batch_and_empty_queries() {
        let m = meta();
        let op = RadiusOp;
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_many(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(2, 2)], &[Coord::d2(3, 3)], &[]));
        assert!(ds.lookup_backward_many(&[], 0, &op, &m).is_empty());
        let empty = CellSet::empty(Shape::d2(8, 8));
        let full = query_of(Shape::d2(8, 8), &[Coord::d2(2, 2)]);
        let outs = ds.lookup_backward_many(&[&empty, &full], 0, &op, &m);
        assert!(outs[0].result.is_empty());
        assert_eq!(outs[1].result.to_coords(), vec![Coord::d2(3, 3)]);
    }

    /// A workload where almost every pair re-touches the same few keys — the
    /// case the write-side key interner exists for.
    fn high_dup_pairs() -> Vec<RegionPair> {
        let hot = [Coord::d2(0, 0), Coord::d2(1, 1), Coord::d2(2, 2)];
        let mut pairs = Vec::new();
        for i in 0..96u32 {
            pairs.push(full_pair(
                &[hot[(i % 3) as usize], hot[((i + 1) % 3) as usize]],
                &[hot[(i % 3) as usize], Coord::d2(i % 8, 7)],
                &[hot[((i + 2) % 3) as usize]],
            ));
            pairs.push(RegionPair::Payload {
                outcells: vec![hot[(i % 3) as usize]],
                // Two bytes: a small radius (RadiusOp reads the first byte)
                // plus a discriminator so every payload is distinct.
                payload: vec![(i % 3) as u8, i as u8],
            });
        }
        pairs
    }

    #[test]
    fn deduped_batched_ingest_matches_per_pair_byte_for_byte() {
        // Write-side key dedup coalesces the repeated keys of a batch before
        // they reach the kv table; the stored bytes and every query answer
        // must still be exactly what the per-pair reference path produces.
        let m = meta();
        let op = RadiusOp;
        let pairs = high_dup_pairs();
        let shape = Shape::d2(8, 8);
        for strategy in all_strategies() {
            let mut reference = OpDatastore::in_memory("ref", strategy, &m);
            for pair in &pairs {
                reference.store_pair(pair);
            }
            for workers in [1usize, 4] {
                let mut batched = OpDatastore::in_memory("bat", strategy, &m);
                for chunk in pairs.chunks(48) {
                    batched.store_batch(chunk, workers);
                }
                assert_eq!(
                    batched.snapshot(),
                    reference.snapshot(),
                    "dedup'd contents differ for {strategy} (workers={workers})"
                );
                for i in 0..4 {
                    let q = query_of(shape, &[Coord::d2(i, i), Coord::d2(0, 0)]);
                    for input_idx in 0..2 {
                        let a = batched.lookup_backward(&q, input_idx, &op, &m);
                        let b = reference.lookup_backward(&q, input_idx, &op, &m);
                        assert_eq!(a.result.to_coords(), b.result.to_coords());
                        assert_eq!(a.covered.to_coords(), b.covered.to_coords());
                        let a = batched.lookup_forward(&q, input_idx, &op, &m);
                        let b = reference.lookup_forward(&q, input_idx, &op, &m);
                        assert_eq!(a.result.to_coords(), b.result.to_coords());
                    }
                }
            }
        }
    }

    /// Reopens an on-disk datastore over the same `.kv` file.
    fn reopen(path: &std::path::Path, strategy: StorageStrategy, m: &OpMeta) -> OpDatastore {
        let backend = subzero_store::kv::FileBackend::open(path).unwrap();
        OpDatastore::new("t", strategy, m, Box::new(backend))
    }

    /// Every lookup answer (both directions, both inputs) over a probe grid.
    fn probe_answers(ds: &mut OpDatastore, op: &dyn Operator, m: &OpMeta) -> Vec<Vec<Coord>> {
        let shape = Shape::d2(8, 8);
        let mut answers = Vec::new();
        for i in 0..8 {
            let q = query_of(shape, &[Coord::d2(i, i), Coord::d2(i, (i + 3) % 8)]);
            for input_idx in 0..2 {
                answers.push(ds.lookup_backward(&q, input_idx, op, m).result.to_coords());
                answers.push(ds.lookup_forward(&q, input_idx, op, m).result.to_coords());
            }
        }
        answers
    }

    #[test]
    fn sidecar_restores_index_and_counters_on_reopen() {
        let dir = std::env::temp_dir().join(format!("subzero-ds-sidecar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = meta();
        let op = RadiusOp;
        for (i, strategy) in all_strategies().iter().enumerate() {
            if !strategy.stores_pairs() {
                continue;
            }
            let path = dir.join(format!("s{i}.kv"));
            let mut ds = reopen(&path, *strategy, &m);
            ds.store_batch(&mixed_pairs(), 2);
            ds.finish_ingest();
            let (pairs, cells, next) = (ds.pairs_stored, ds.cells_stored, ds.next_entry_id);
            let expected = probe_answers(&mut ds, &op, &m);
            drop(ds);
            let sidecar = dir.join(format!("s{i}.kv.idx"));
            assert!(sidecar.exists(), "finish_ingest persists the sidecar");

            let mut back = reopen(&path, *strategy, &m);
            assert_eq!(back.pairs_stored, pairs, "strategy {strategy}");
            assert_eq!(back.cells_stored, cells, "strategy {strategy}");
            assert_eq!(back.next_entry_id, next, "strategy {strategy}");
            assert!(
                back.rtree_staged.is_empty(),
                "sidecar load must not leave staged entries"
            );
            assert_eq!(
                probe_answers(&mut back, &op, &m),
                expected,
                "strategy {strategy}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_missing_sidecar_rebuilds_from_log() {
        let dir = std::env::temp_dir().join(format!("subzero-ds-rebuild-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = meta();
        let op = RadiusOp;
        let strategy = StorageStrategy::full_many();
        let path = dir.join("r.kv");
        let sidecar = dir.join("r.kv.idx");
        let mut ds = reopen(&path, strategy, &m);
        ds.store_batch(&mixed_pairs(), 2);
        ds.finish_ingest();
        let next = ds.next_entry_id;
        let expected = probe_answers(&mut ds, &op, &m);
        drop(ds);

        // Deleted sidecar: reopen rebuilds index + entry ids from the log.
        std::fs::remove_file(&sidecar).unwrap();
        let mut back = reopen(&path, strategy, &m);
        assert_eq!(back.next_entry_id, next);
        assert_eq!(probe_answers(&mut back, &op, &m), expected);
        drop(back);

        // Corrupted sidecar bytes: reopen warns, rebuilds, answers identically.
        for corrupt in [
            b"garbage".to_vec(),
            std::fs::read(&sidecar)
                .map(|mut b| {
                    let mid = b.len() / 2;
                    b[mid] ^= 0xff;
                    b.truncate(b.len() - 3);
                    b
                })
                .unwrap_or_else(|_| vec![0; 40]),
        ] {
            std::fs::write(&sidecar, &corrupt).unwrap();
            let mut back = reopen(&path, strategy, &m);
            assert_eq!(back.next_entry_id, next);
            assert_eq!(probe_answers(&mut back, &op, &m), expected);
            drop(back);
        }

        // Stale sidecar (log grew after it was written): the stamp no longer
        // matches, so the reopen must ignore it and rebuild.
        let mut grow = reopen(&path, strategy, &m);
        grow.finish_ingest(); // fresh, valid sidecar
                              // Flushed to the log by the group write, but the sidecar is not
                              // rewritten — exactly the crash-mid-ingest window.
        grow.store_batch(&[full_pair(&[Coord::d2(7, 0)], &[Coord::d2(0, 7)], &[])], 1);
        let expected_grown = probe_answers(&mut grow, &op, &m);
        let next_grown = grow.next_entry_id;
        drop(grow);
        let mut back = reopen(&path, strategy, &m);
        assert_eq!(back.next_entry_id, next_grown);
        assert_eq!(probe_answers(&mut back, &op, &m), expected_grown);

        // Ingest continues cleanly after a rebuild-recovered reopen.
        back.store_batch(&[full_pair(&[Coord::d2(0, 7)], &[Coord::d2(7, 7)], &[])], 1);
        back.finish_ingest();
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(0, 7)]);
        let out = back.lookup_backward(&q, 0, &op, &m);
        assert!(out.result.contains(&Coord::d2(7, 7)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_batch_ignores_wrong_kinds_and_empty_batches() {
        let m = meta();
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one(), &m);
        ds.store_batch(&[], 1);
        ds.store_batch(
            &[RegionPair::Payload {
                outcells: vec![Coord::d2(0, 0)],
                payload: vec![1],
            }],
            1,
        );
        assert_eq!(ds.pairs_stored(), 0);
        assert_eq!(ds.num_entries(), 0);
    }
}
