//! Per-operator lineage datastores.
//!
//! "The runtime allocates a new BerkeleyDB database for each operator
//! instance that stores region lineage" (§VI-A).  An [`OpDatastore`] is that
//! database: it owns a [`Database`] of encoded region-pair entries, the
//! R-tree over key-side cells for the *Many* encodings, and the statistics
//! (bytes, entries, encode time) the optimizer's cost model consumes.
//!
//! A datastore is created for one `(operator execution, storage strategy)`
//! pair and answers backward/forward lookups for the query executor.  When a
//! query direction does not match the strategy's index direction the lookup
//! degrades to a full scan — deliberately so, because that mismatch penalty
//! (up to two orders of magnitude in the paper's genomics benchmark) is one
//! of the effects SubZero's optimizer exists to avoid.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use subzero_array::{BoundingBox, CellSet, Coord, Shape};
use subzero_engine::{OpMeta, Operator, RegionPair};
use subzero_store::kv::{Database, KvBackend, MemBackend};
use subzero_store::RTree;

use crate::encoder::{
    self, decode_entry_ids, decode_full_entry, decode_key, decode_pay_entry, decode_payloads,
    DecodedKey,
};
use crate::model::{Direction, Granularity, StorageStrategy};
use subzero_engine::LineageMode;

/// Outcome of one datastore lookup.
#[derive(Debug, Clone)]
pub struct LookupOutcome {
    /// Lineage cells found (input cells for backward lookups, output cells
    /// for forward lookups).
    pub result: CellSet,
    /// The query cells for which stored lineage was found.  Composite
    /// lineage uses this to decide which cells fall back to the default
    /// mapping function.
    pub covered: CellSet,
    /// Number of hash entries fetched.
    pub entries_fetched: usize,
    /// Whether the lookup had to scan the whole datastore because the
    /// stored index direction did not match the query direction.
    pub scanned: bool,
}

/// One operator's materialised lineage under one storage strategy.
pub struct OpDatastore {
    strategy: StorageStrategy,
    out_shape: Shape,
    in_shapes: Vec<Shape>,
    db: Database,
    rtree: Option<RTree>,
    next_entry_id: u64,
    pairs_stored: u64,
    cells_stored: u64,
    encode_time: Duration,
}

impl OpDatastore {
    /// Creates a datastore backed by the given key-value backend.
    pub fn new(
        name: impl Into<String>,
        strategy: StorageStrategy,
        meta: &OpMeta,
        backend: Box<dyn KvBackend>,
    ) -> Self {
        let rtree = match strategy.granularity {
            Granularity::Many if strategy.stores_pairs() => Some(RTree::new()),
            _ => None,
        };
        OpDatastore {
            strategy,
            out_shape: meta.output_shape,
            in_shapes: meta.input_shapes.clone(),
            db: Database::new(name, backend),
            rtree,
            next_entry_id: 0,
            pairs_stored: 0,
            cells_stored: 0,
            encode_time: Duration::ZERO,
        }
    }

    /// Creates an in-memory datastore (the common case for tests and
    /// benchmarks; the paper's prototype also treats lineage as a cache).
    pub fn in_memory(
        name: impl Into<String>,
        strategy: StorageStrategy,
        meta: &OpMeta,
    ) -> Self {
        Self::new(name, strategy, meta, Box::new(MemBackend::new()))
    }

    /// The storage strategy this datastore implements.
    pub fn strategy(&self) -> StorageStrategy {
        self.strategy
    }

    /// Number of region pairs stored.
    pub fn pairs_stored(&self) -> u64 {
        self.pairs_stored
    }

    /// Total number of coordinates stored across all pairs.
    pub fn cells_stored(&self) -> u64 {
        self.cells_stored
    }

    /// Time spent encoding and writing pairs (the runtime overhead charged to
    /// this strategy).
    pub fn encode_time(&self) -> Duration {
        self.encode_time
    }

    /// Logical bytes used by the hash entries plus the spatial index.
    pub fn bytes_used(&self) -> usize {
        self.db.bytes_used() + self.rtree.as_ref().map(|t| t.size_bytes()).unwrap_or(0)
    }

    /// Number of live hash entries.
    pub fn num_entries(&self) -> usize {
        self.db.len()
    }

    /// Stores one region pair according to the strategy.
    ///
    /// Pairs whose kind does not match the strategy's mode (e.g. a payload
    /// pair arriving for a `Full` strategy) are ignored: operators may emit
    /// several kinds when asked for several modes, and each datastore keeps
    /// only what it understands.
    pub fn store_pair(&mut self, pair: &RegionPair) {
        let start = Instant::now();
        match (self.strategy.mode, pair) {
            (LineageMode::Full, RegionPair::Full { outcells, incells }) => {
                self.store_full(outcells, incells);
            }
            (LineageMode::Pay | LineageMode::Comp, RegionPair::Payload { outcells, payload }) => {
                self.store_payload(outcells, payload);
            }
            _ => return,
        }
        self.pairs_stored += 1;
        self.cells_stored += pair.num_cells() as u64;
        self.encode_time += start.elapsed();
    }

    fn store_full(&mut self, outcells: &[Coord], incells: &[Vec<Coord>]) {
        if outcells.is_empty() {
            return;
        }
        match (self.strategy.granularity, self.strategy.direction) {
            (Granularity::One, Direction::Backward) => {
                // Shared entry holds the input cells; one hash entry per
                // output cell references it.
                let id = self.alloc_entry();
                let body = encoder::encode_full_entry(
                    &self.out_shape,
                    &self.in_shapes,
                    &[],
                    incells,
                    false,
                );
                self.db.put(&encoder::entry_key(id), &body);
                for oc in outcells {
                    let key = encoder::out_cell_key(&self.out_shape, oc);
                    self.db.merge(&key, |old| {
                        let mut v = old.unwrap_or_default();
                        encoder::append_entry_id(&mut v, id);
                        v
                    });
                }
            }
            (Granularity::Many, Direction::Backward) => {
                let id = self.alloc_entry();
                let body = encoder::encode_full_entry(
                    &self.out_shape,
                    &self.in_shapes,
                    outcells,
                    incells,
                    true,
                );
                self.db.put(&encoder::entry_key(id), &body);
                if let (Some(tree), Some(bbox)) =
                    (self.rtree.as_mut(), BoundingBox::enclosing(outcells))
                {
                    tree.insert(bbox, id);
                }
            }
            (Granularity::One, Direction::Forward) => {
                // Shared entry holds the output cells; one hash entry per
                // input cell (tagged with its input index) references it.
                let id = self.alloc_entry();
                let body = encoder::encode_full_entry(
                    &self.out_shape,
                    &self.in_shapes,
                    outcells,
                    &vec![Vec::new(); self.in_shapes.len()],
                    true,
                );
                self.db.put(&encoder::entry_key(id), &body);
                for (i, cells) in incells.iter().enumerate() {
                    for ic in cells {
                        let key = encoder::in_cell_key(&self.in_shapes[i], i, ic);
                        self.db.merge(&key, |old| {
                            let mut v = old.unwrap_or_default();
                            encoder::append_entry_id(&mut v, id);
                            v
                        });
                    }
                }
            }
            (Granularity::Many, Direction::Forward) => {
                let id = self.alloc_entry();
                let body = encoder::encode_full_entry(
                    &self.out_shape,
                    &self.in_shapes,
                    outcells,
                    incells,
                    true,
                );
                self.db.put(&encoder::entry_key(id), &body);
                if let Some(tree) = self.rtree.as_mut() {
                    for cells in incells {
                        if let Some(bbox) = BoundingBox::enclosing(cells) {
                            tree.insert(bbox, id);
                        }
                    }
                }
            }
        }
    }

    fn store_payload(&mut self, outcells: &[Coord], payload: &[u8]) {
        if outcells.is_empty() {
            return;
        }
        match self.strategy.granularity {
            Granularity::One => {
                // The payload is duplicated into every output cell's entry
                // (the PayOne layout of Fig. 4.4).
                for oc in outcells {
                    let key = encoder::out_cell_key(&self.out_shape, oc);
                    self.db.merge(&key, |old| {
                        let mut v = old.unwrap_or_default();
                        encoder::append_payload(&mut v, payload);
                        v
                    });
                }
            }
            Granularity::Many => {
                let id = self.alloc_entry();
                let body = encoder::encode_pay_entry(&self.out_shape, outcells, payload);
                self.db.put(&encoder::entry_key(id), &body);
                if let (Some(tree), Some(bbox)) =
                    (self.rtree.as_mut(), BoundingBox::enclosing(outcells))
                {
                    tree.insert(bbox, id);
                }
            }
        }
    }

    fn alloc_entry(&mut self) -> u64 {
        let id = self.next_entry_id;
        self.next_entry_id += 1;
        id
    }

    /// Answers a backward lookup: which cells of input `input_idx` do the
    /// query output cells depend on, according to the stored lineage?
    pub fn lookup_backward(
        &mut self,
        query: &CellSet,
        input_idx: usize,
        op: &dyn Operator,
        meta: &OpMeta,
    ) -> LookupOutcome {
        let mut result = CellSet::empty(self.in_shapes[input_idx]);
        let mut covered = CellSet::empty(self.out_shape);
        let mut entries_fetched = 0usize;
        let mut scanned = false;

        match (self.strategy.mode, self.strategy.direction, self.strategy.granularity) {
            // --- Indexed (backward-optimized) paths -------------------------
            (LineageMode::Full, Direction::Backward, Granularity::One) => {
                for qc in query.iter() {
                    let key = encoder::out_cell_key(&self.out_shape, &qc);
                    if let Some(value) = self.db.get(&key) {
                        covered.insert(&qc);
                        for id in decode_entry_ids(&value).unwrap_or_default() {
                            if let Some(body) = self.db.get(&encoder::entry_key(id)) {
                                entries_fetched += 1;
                                if let Ok(entry) =
                                    decode_full_entry(&self.out_shape, &self.in_shapes, &body)
                                {
                                    for c in entry.incells.get(input_idx).into_iter().flatten() {
                                        result.insert(c);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            (LineageMode::Full, Direction::Backward, Granularity::Many) => {
                let ids = self.candidate_entries(query);
                for id in ids {
                    if let Some(body) = self.db.get(&encoder::entry_key(id)) {
                        entries_fetched += 1;
                        if let Ok(entry) =
                            decode_full_entry(&self.out_shape, &self.in_shapes, &body)
                        {
                            let hits: Vec<&Coord> = entry
                                .outcells
                                .iter()
                                .filter(|c| query.contains(c))
                                .collect();
                            if !hits.is_empty() {
                                for c in &hits {
                                    covered.insert(c);
                                }
                                for c in entry.incells.get(input_idx).into_iter().flatten() {
                                    result.insert(c);
                                }
                            }
                        }
                    }
                }
            }
            (LineageMode::Pay | LineageMode::Comp, _, Granularity::One) => {
                for qc in query.iter() {
                    let key = encoder::out_cell_key(&self.out_shape, &qc);
                    if let Some(value) = self.db.get(&key) {
                        covered.insert(&qc);
                        entries_fetched += 1;
                        for payload in decode_payloads(&value).unwrap_or_default() {
                            for c in op
                                .map_payload(&qc, &payload, input_idx, meta)
                                .unwrap_or_default()
                            {
                                result.insert(&c);
                            }
                        }
                    }
                }
            }
            (LineageMode::Pay | LineageMode::Comp, _, Granularity::Many) => {
                let ids = self.candidate_entries(query);
                for id in ids {
                    if let Some(body) = self.db.get(&encoder::entry_key(id)) {
                        entries_fetched += 1;
                        if let Ok(entry) = decode_pay_entry(&self.out_shape, &body) {
                            for oc in entry.outcells.iter().filter(|c| query.contains(c)) {
                                covered.insert(oc);
                                for c in op
                                    .map_payload(oc, &entry.payload, input_idx, meta)
                                    .unwrap_or_default()
                                {
                                    result.insert(&c);
                                }
                            }
                        }
                    }
                }
            }
            // --- Mismatched index: forward-optimized store, backward query --
            (LineageMode::Full, Direction::Forward, _) => {
                scanned = true;
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = self.db.iter().collect();
                match self.strategy.granularity {
                    Granularity::One => {
                        // Keys are (input idx, input cell); entries hold
                        // output cells.  Scan every input-cell record.
                        for (key, value) in &pairs {
                            let Ok(DecodedKey::InCell { input_idx: i, cell }) =
                                decode_key(&self.out_shape, &self.in_shapes, key)
                            else {
                                continue;
                            };
                            if i != input_idx {
                                continue;
                            }
                            for id in decode_entry_ids(value).unwrap_or_default() {
                                if let Some(body) = self.db.peek(&encoder::entry_key(id)) {
                                    entries_fetched += 1;
                                    if let Ok(entry) = decode_full_entry(
                                        &self.out_shape,
                                        &self.in_shapes,
                                        &body,
                                    ) {
                                        let hit = entry
                                            .outcells
                                            .iter()
                                            .any(|c| query.contains(c));
                                        if hit {
                                            result.insert(&cell);
                                            for oc in
                                                entry.outcells.iter().filter(|c| query.contains(c))
                                            {
                                                covered.insert(oc);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Granularity::Many => {
                        for (key, body) in &pairs {
                            if !matches!(
                                decode_key(&self.out_shape, &self.in_shapes, key),
                                Ok(DecodedKey::Entry(_))
                            ) {
                                continue;
                            }
                            entries_fetched += 1;
                            if let Ok(entry) =
                                decode_full_entry(&self.out_shape, &self.in_shapes, body)
                            {
                                let hit = entry.outcells.iter().any(|c| query.contains(c));
                                if hit {
                                    for oc in entry.outcells.iter().filter(|c| query.contains(c)) {
                                        covered.insert(oc);
                                    }
                                    for c in entry.incells.get(input_idx).into_iter().flatten() {
                                        result.insert(c);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            (LineageMode::Map | LineageMode::Blackbox, _, _) => {
                // These strategies store nothing; the query executor never
                // routes lookups here, but returning an empty outcome keeps
                // the datastore total.
            }
        }

        LookupOutcome {
            result,
            covered,
            entries_fetched,
            scanned,
        }
    }

    /// Answers a forward lookup: which output cells depend on the query cells
    /// of input `input_idx`, according to the stored lineage?
    pub fn lookup_forward(
        &mut self,
        query: &CellSet,
        input_idx: usize,
        op: &dyn Operator,
        meta: &OpMeta,
    ) -> LookupOutcome {
        let mut result = CellSet::empty(self.out_shape);
        let mut covered = CellSet::empty(self.in_shapes[input_idx]);
        let mut entries_fetched = 0usize;
        let mut scanned = false;

        match (self.strategy.mode, self.strategy.direction, self.strategy.granularity) {
            // --- Indexed (forward-optimized) paths ---------------------------
            (LineageMode::Full, Direction::Forward, Granularity::One) => {
                for qc in query.iter() {
                    let key = encoder::in_cell_key(&self.in_shapes[input_idx], input_idx, &qc);
                    if let Some(value) = self.db.get(&key) {
                        covered.insert(&qc);
                        for id in decode_entry_ids(&value).unwrap_or_default() {
                            if let Some(body) = self.db.get(&encoder::entry_key(id)) {
                                entries_fetched += 1;
                                if let Ok(entry) =
                                    decode_full_entry(&self.out_shape, &self.in_shapes, &body)
                                {
                                    for c in &entry.outcells {
                                        result.insert(c);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            (LineageMode::Full, Direction::Forward, Granularity::Many) => {
                let ids = self.candidate_entries(query);
                for id in ids {
                    if let Some(body) = self.db.get(&encoder::entry_key(id)) {
                        entries_fetched += 1;
                        if let Ok(entry) =
                            decode_full_entry(&self.out_shape, &self.in_shapes, &body)
                        {
                            let hits: Vec<&Coord> = entry
                                .incells
                                .get(input_idx)
                                .into_iter()
                                .flatten()
                                .filter(|c| query.contains(c))
                                .collect();
                            if !hits.is_empty() {
                                for c in &hits {
                                    covered.insert(c);
                                }
                                for c in &entry.outcells {
                                    result.insert(c);
                                }
                            }
                        }
                    }
                }
            }
            // --- Mismatched index: backward-optimized store, forward query ---
            (LineageMode::Full, Direction::Backward, Granularity::One) => {
                scanned = true;
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = self.db.iter().collect();
                for (key, value) in &pairs {
                    let Ok(DecodedKey::OutCell(oc)) =
                        decode_key(&self.out_shape, &self.in_shapes, key)
                    else {
                        continue;
                    };
                    for id in decode_entry_ids(value).unwrap_or_default() {
                        if let Some(body) = self.db.peek(&encoder::entry_key(id)) {
                            entries_fetched += 1;
                            if let Ok(entry) =
                                decode_full_entry(&self.out_shape, &self.in_shapes, &body)
                            {
                                let hits: Vec<&Coord> = entry
                                    .incells
                                    .get(input_idx)
                                    .into_iter()
                                    .flatten()
                                    .filter(|c| query.contains(c))
                                    .collect();
                                if !hits.is_empty() {
                                    result.insert(&oc);
                                    for c in &hits {
                                        covered.insert(c);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            (LineageMode::Full, Direction::Backward, Granularity::Many) => {
                scanned = true;
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = self.db.iter().collect();
                for (key, body) in &pairs {
                    if !matches!(
                        decode_key(&self.out_shape, &self.in_shapes, key),
                        Ok(DecodedKey::Entry(_))
                    ) {
                        continue;
                    }
                    entries_fetched += 1;
                    if let Ok(entry) = decode_full_entry(&self.out_shape, &self.in_shapes, body) {
                        let hits: Vec<&Coord> = entry
                            .incells
                            .get(input_idx)
                            .into_iter()
                            .flatten()
                            .filter(|c| query.contains(c))
                            .collect();
                        if !hits.is_empty() {
                            for c in &hits {
                                covered.insert(c);
                            }
                            for c in &entry.outcells {
                                result.insert(c);
                            }
                        }
                    }
                }
            }
            // --- Payload lineage: always requires iterating the pairs --------
            (LineageMode::Pay | LineageMode::Comp, _, Granularity::One) => {
                scanned = true;
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = self.db.iter().collect();
                for (key, value) in &pairs {
                    let Ok(DecodedKey::OutCell(oc)) =
                        decode_key(&self.out_shape, &self.in_shapes, key)
                    else {
                        continue;
                    };
                    entries_fetched += 1;
                    for payload in decode_payloads(value).unwrap_or_default() {
                        let incells = op
                            .map_payload(&oc, &payload, input_idx, meta)
                            .unwrap_or_default();
                        let hits: Vec<&Coord> =
                            incells.iter().filter(|c| query.contains(c)).collect();
                        if !hits.is_empty() {
                            result.insert(&oc);
                            for c in &hits {
                                covered.insert(c);
                            }
                        }
                    }
                }
            }
            (LineageMode::Pay | LineageMode::Comp, _, Granularity::Many) => {
                scanned = true;
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = self.db.iter().collect();
                for (key, body) in &pairs {
                    if !matches!(
                        decode_key(&self.out_shape, &self.in_shapes, key),
                        Ok(DecodedKey::Entry(_))
                    ) {
                        continue;
                    }
                    entries_fetched += 1;
                    if let Ok(entry) = decode_pay_entry(&self.out_shape, body) {
                        for oc in &entry.outcells {
                            let incells = op
                                .map_payload(oc, &entry.payload, input_idx, meta)
                                .unwrap_or_default();
                            let hits: Vec<&Coord> =
                                incells.iter().filter(|c| query.contains(c)).collect();
                            if !hits.is_empty() {
                                result.insert(oc);
                                for c in &hits {
                                    covered.insert(c);
                                }
                            }
                        }
                    }
                }
            }
            (LineageMode::Map | LineageMode::Blackbox, _, _) => {}
        }

        LookupOutcome {
            result,
            covered,
            entries_fetched,
            scanned,
        }
    }

    /// Entry ids whose key-side bounding box intersects any query cell,
    /// according to the R-tree (a superset: exact membership is re-checked
    /// after decoding).
    fn candidate_entries(&self, query: &CellSet) -> Vec<u64> {
        let Some(tree) = self.rtree.as_ref() else {
            return Vec::new();
        };
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        // Query the R-tree with the bounding box of the query cells first; if
        // the query is small, per-cell point queries are more selective.
        if query.len() <= 64 {
            for c in query.iter() {
                for id in tree.query_point(&c) {
                    if seen.insert(id) {
                        out.push(id);
                    }
                }
            }
        } else {
            let coords = query.to_coords();
            if let Some(bbox) = BoundingBox::enclosing(&coords) {
                for id in tree.query(&bbox) {
                    if seen.insert(id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for OpDatastore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpDatastore")
            .field("strategy", &self.strategy.label())
            .field("pairs", &self.pairs_stored)
            .field("bytes", &self.bytes_used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subzero_array::{Array, ArrayRef};
    use subzero_engine::{LineageSink, OpId};

    /// A toy payload operator: payload byte r means "depends on the
    /// neighbourhood of radius r around the output cell".
    struct RadiusOp;

    impl Operator for RadiusOp {
        fn name(&self) -> &str {
            "radius"
        }
        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }
        fn run(
            &self,
            inputs: &[ArrayRef],
            _m: &[LineageMode],
            _s: &mut dyn LineageSink,
        ) -> Array {
            (*inputs[0]).clone()
        }
        fn map_payload(
            &self,
            outcell: &Coord,
            payload: &[u8],
            _i: usize,
            meta: &OpMeta,
        ) -> Option<Vec<Coord>> {
            let r = payload.first().copied().unwrap_or(0) as u32;
            Some(meta.input_shape(0).neighborhood(outcell, r))
        }
        fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
            Some(vec![*outcell])
        }
    }

    fn meta() -> OpMeta {
        OpMeta::new(vec![Shape::d2(8, 8), Shape::d2(8, 8)], Shape::d2(8, 8))
    }

    fn full_pair(out: &[Coord], in0: &[Coord], in1: &[Coord]) -> RegionPair {
        RegionPair::Full {
            outcells: out.to_vec(),
            incells: vec![in0.to_vec(), in1.to_vec()],
        }
    }

    fn query_of(shape: Shape, cells: &[Coord]) -> CellSet {
        CellSet::from_coords(shape, cells.iter().copied())
    }

    const _: OpId = 0;

    fn full_strategies() -> Vec<StorageStrategy> {
        vec![
            StorageStrategy::full_one(),
            StorageStrategy::full_many(),
            StorageStrategy::full_one_forward(),
            StorageStrategy::full_many_forward(),
        ]
    }

    #[test]
    fn full_strategies_answer_backward_and_forward_lookups() {
        let m = meta();
        let op = RadiusOp;
        for strategy in full_strategies() {
            let mut ds = OpDatastore::in_memory("t", strategy, &m);
            ds.store_pair(&full_pair(
                &[Coord::d2(0, 0), Coord::d2(0, 1)],
                &[Coord::d2(1, 1), Coord::d2(1, 2)],
                &[Coord::d2(7, 7)],
            ));
            ds.store_pair(&full_pair(&[Coord::d2(5, 5)], &[Coord::d2(6, 6)], &[]));
            assert_eq!(ds.pairs_stored(), 2);

            // Backward: lineage of (0,1) in input 0 is {(1,1),(1,2)}.
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(0, 1)]);
            let out = ds.lookup_backward(&q, 0, &op, &m);
            assert_eq!(
                out.result.to_coords(),
                vec![Coord::d2(1, 1), Coord::d2(1, 2)],
                "strategy {strategy}"
            );
            assert!(out.covered.contains(&Coord::d2(0, 1)));
            // Backward in input 1.
            let out1 = ds.lookup_backward(&q, 1, &op, &m);
            assert_eq!(out1.result.to_coords(), vec![Coord::d2(7, 7)]);

            // Forward: input cell (6,6) of input 0 influenced output (5,5).
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(6, 6)]);
            let out = ds.lookup_forward(&q, 0, &op, &m);
            assert_eq!(
                out.result.to_coords(),
                vec![Coord::d2(5, 5)],
                "strategy {strategy}"
            );
            // Forward query for a cell with no lineage is empty.
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(0, 0)]);
            let out = ds.lookup_forward(&q, 0, &op, &m);
            assert!(out.result.is_empty(), "strategy {strategy}");
        }
    }

    #[test]
    fn mismatched_direction_falls_back_to_scan() {
        let m = meta();
        let op = RadiusOp;
        // Backward-optimized store, forward query => scan.
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(2, 2)], &[Coord::d2(3, 3)], &[]));
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(3, 3)]);
        let out = ds.lookup_forward(&q, 0, &op, &m);
        assert!(out.scanned);
        assert_eq!(out.result.to_coords(), vec![Coord::d2(2, 2)]);

        // Forward-optimized store, backward query => scan.
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one_forward(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(2, 2)], &[Coord::d2(3, 3)], &[]));
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(2, 2)]);
        let out = ds.lookup_backward(&q, 0, &op, &m);
        assert!(out.scanned);
        assert_eq!(out.result.to_coords(), vec![Coord::d2(3, 3)]);

        // Matched directions never scan.
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_many(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(2, 2)], &[Coord::d2(3, 3)], &[]));
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(2, 2)]);
        assert!(!ds.lookup_backward(&q, 0, &op, &m).scanned);
    }

    #[test]
    fn payload_strategies_use_map_payload() {
        let m = meta();
        let op = RadiusOp;
        for strategy in [StorageStrategy::pay_one(), StorageStrategy::pay_many()] {
            let mut ds = OpDatastore::in_memory("t", strategy, &m);
            // Cell (4,4) has radius-1 lineage; cell (0,0) has radius-0.
            ds.store_pair(&RegionPair::Payload {
                outcells: vec![Coord::d2(4, 4)],
                payload: vec![1],
            });
            ds.store_pair(&RegionPair::Payload {
                outcells: vec![Coord::d2(0, 0)],
                payload: vec![0],
            });
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(4, 4)]);
            let out = ds.lookup_backward(&q, 0, &op, &m);
            assert_eq!(out.result.len(), 9, "strategy {strategy}");
            assert!(out.covered.contains(&Coord::d2(4, 4)));

            let q = query_of(Shape::d2(8, 8), &[Coord::d2(0, 0)]);
            let out = ds.lookup_backward(&q, 0, &op, &m);
            assert_eq!(out.result.to_coords(), vec![Coord::d2(0, 0)]);

            // Forward payload queries iterate all pairs.
            let q = query_of(Shape::d2(8, 8), &[Coord::d2(3, 4)]);
            let out = ds.lookup_forward(&q, 0, &op, &m);
            assert!(out.scanned);
            assert_eq!(out.result.to_coords(), vec![Coord::d2(4, 4)]);
        }
    }

    #[test]
    fn composite_reports_uncovered_cells() {
        let m = meta();
        let op = RadiusOp;
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::composite_one(), &m);
        // Only the "exceptional" cell stores a payload pair.
        ds.store_pair(&RegionPair::Payload {
            outcells: vec![Coord::d2(6, 6)],
            payload: vec![2],
        });
        let q = query_of(Shape::d2(8, 8), &[Coord::d2(6, 6), Coord::d2(1, 1)]);
        let out = ds.lookup_backward(&q, 0, &op, &m);
        assert!(out.covered.contains(&Coord::d2(6, 6)));
        assert!(!out.covered.contains(&Coord::d2(1, 1)));
        // The covered cell contributed its radius-2 neighbourhood (clipped).
        assert!(out.result.len() >= 9);
    }

    #[test]
    fn payload_one_duplicates_payload_per_cell() {
        let m = meta();
        let mut one = OpDatastore::in_memory("one", StorageStrategy::pay_one(), &m);
        let mut many = OpDatastore::in_memory("many", StorageStrategy::pay_many(), &m);
        let outcells: Vec<Coord> = (0..8).map(|i| Coord::d2(3, i)).collect();
        let pair = RegionPair::Payload {
            outcells,
            payload: vec![42; 16],
        };
        one.store_pair(&pair);
        many.store_pair(&pair);
        // PayOne stores 8 copies of the payload; PayMany stores one entry
        // (plus the R-tree).  The hash-entry bytes alone must be larger for
        // PayOne.
        assert!(one.db.bytes_used() > many.db.bytes_used());
        assert_eq!(one.num_entries(), 8);
        assert_eq!(many.num_entries(), 1);
    }

    #[test]
    fn full_one_vs_full_many_storage_tradeoff() {
        let m = meta();
        // High fanout: many output cells share the same input cells.  The
        // FullMany encoding stores the output cells once; FullOne duplicates
        // a hash entry per output cell.
        let outcells: Vec<Coord> = Shape::d2(8, 8).iter().take(48).collect();
        let incells = vec![Coord::d2(0, 0), Coord::d2(0, 1)];
        let pair = full_pair(&outcells, &incells, &[]);
        let mut one = OpDatastore::in_memory("one", StorageStrategy::full_one(), &m);
        let mut many = OpDatastore::in_memory("many", StorageStrategy::full_many(), &m);
        one.store_pair(&pair);
        many.store_pair(&pair);
        assert!(one.num_entries() > many.num_entries());
        assert!(one.db.bytes_used() > many.db.bytes_used());
    }

    #[test]
    fn wrong_pair_kind_is_ignored() {
        let m = meta();
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one(), &m);
        ds.store_pair(&RegionPair::Payload {
            outcells: vec![Coord::d2(0, 0)],
            payload: vec![1],
        });
        assert_eq!(ds.pairs_stored(), 0);
        assert_eq!(ds.num_entries(), 0);

        let mut ds = OpDatastore::in_memory("t", StorageStrategy::pay_one(), &m);
        ds.store_pair(&full_pair(&[Coord::d2(0, 0)], &[Coord::d2(1, 1)], &[]));
        assert_eq!(ds.pairs_stored(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let m = meta();
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_many(), &m);
        assert_eq!(ds.bytes_used(), 0);
        for i in 0..10u32 {
            ds.store_pair(&full_pair(
                &[Coord::d2(i % 8, 0)],
                &[Coord::d2(i % 8, 1), Coord::d2(i % 8, 2)],
                &[],
            ));
        }
        assert_eq!(ds.pairs_stored(), 10);
        assert_eq!(ds.cells_stored(), 30);
        assert!(ds.bytes_used() > 0);
        assert!(ds.encode_time() > Duration::ZERO);
        assert_eq!(ds.strategy(), StorageStrategy::full_many());
    }

    #[test]
    fn empty_pairs_are_skipped() {
        let m = meta();
        let mut ds = OpDatastore::in_memory("t", StorageStrategy::full_one(), &m);
        ds.store_pair(&full_pair(&[], &[Coord::d2(0, 0)], &[]));
        assert_eq!(ds.num_entries(), 0);
    }
}
