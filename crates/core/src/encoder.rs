//! Byte-level encodings of region-pair entries (Fig. 4 of the paper).
//!
//! The Encoder turns the region pairs produced by `lwrite()` into hash-table
//! keys and values.  Four encoding families exist:
//!
//! * **FullOne** — one hash entry per key-side cell; its value references a
//!   shared entry holding the other side's cells.
//! * **FullMany** — one hash entry per region pair holding both sides; an
//!   R-tree over the key-side cells locates intersecting entries.
//! * **PayOne** — one hash entry per output cell, duplicating the payload in
//!   each value.
//! * **PayMany** — one hash entry per region pair holding the output cells
//!   and the payload, indexed by the R-tree.
//!
//! The functions here are pure byte codecs: key construction, entry bodies,
//! entry-id lists and payload lists.  The [`datastore`](crate::datastore)
//! module decides which of them to use for a given
//! [`StorageStrategy`](crate::model::StorageStrategy).

use subzero_array::{Coord, Shape};
use subzero_store::codec::{
    self, decode_cells_at, decode_cells_block, decode_payload, encode_cells_into, encode_payload,
    read_varint, skip_cells_block, write_varint, CellRun, CodecError, ScanFrame,
};

/// Key-space tags: every key in an operator datastore starts with one of
/// these bytes so entry records and cell records can share one database.
mod tag {
    /// A shared entry record (`entry id -> entry body`).
    pub const ENTRY: u8 = b'e';
    /// A backward cell record (`output cell -> entry ids / payloads`).
    pub const OUT_CELL: u8 = b'o';
    /// A forward cell record (`(input idx, input cell) -> entry ids`).
    pub const IN_CELL: u8 = b'i';
}

/// Builds the key of a shared entry record.
pub fn entry_key(entry_id: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    entry_key_into(&mut k, entry_id);
    k
}

/// Appends the bytes of [`entry_key`] to `out` (the arena variant).
pub fn entry_key_into(out: &mut Vec<u8>, entry_id: u64) {
    out.push(tag::ENTRY);
    out.extend_from_slice(&codec::encode_fixed_u64(entry_id));
}

/// Builds the key of a backward (output-cell) record.
pub fn out_cell_key(out_shape: &Shape, cell: &Coord) -> Vec<u8> {
    PackedCellKey::out_cell(out_shape, cell).to_bytes()
}

/// Builds the key of a forward (input-cell) record.
pub fn in_cell_key(in_shape: &Shape, input_idx: usize, cell: &Coord) -> Vec<u8> {
    PackedCellKey::in_cell(in_shape, input_idx, cell).to_bytes()
}

/// The packed, integer form of a cell-record key.
///
/// The batched write path works in this form as long as it can: packing a
/// coordinate costs a couple of multiplies and no allocation, the write-side
/// dedup table hashes and compares these fixed-width values instead of key
/// byte strings, and only the *distinct* keys that survive dedup are ever
/// materialised as bytes (straight into the batch's key arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedCellKey {
    /// Key-space tag: [`tag::OUT_CELL`] or [`tag::IN_CELL`].
    tag: u8,
    /// Input index for forward keys; 0 for output-cell keys.
    input_idx: u8,
    /// The cell's row-major linear index under its array's shape.
    packed: u64,
}

impl PackedCellKey {
    /// Packs a backward (output-cell) record key.
    #[inline]
    pub fn out_cell(out_shape: &Shape, cell: &Coord) -> Self {
        PackedCellKey {
            tag: tag::OUT_CELL,
            input_idx: 0,
            packed: codec::pack_coord(out_shape, cell),
        }
    }

    /// Packs a forward (input-cell) record key.
    #[inline]
    pub fn in_cell(in_shape: &Shape, input_idx: usize, cell: &Coord) -> Self {
        PackedCellKey {
            tag: tag::IN_CELL,
            input_idx: input_idx as u8,
            packed: codec::pack_coord(in_shape, cell),
        }
    }

    /// Appends the exact bytes [`out_cell_key`]/[`in_cell_key`] would build
    /// for this key to `out` (the arena variant).
    pub fn write_into(&self, out: &mut Vec<u8>) {
        out.push(self.tag);
        if self.tag == tag::IN_CELL {
            out.push(self.input_idx);
        }
        out.extend_from_slice(&codec::encode_fixed_u64(self.packed));
    }

    /// The key bytes as an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut k = Vec::with_capacity(10);
        self.write_into(&mut k);
        k
    }
}

impl std::hash::Hash for PackedCellKey {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // One mixed word instead of three field writes: the tag/input bits
        // live above any realistic packed coordinate, so distinct keys stay
        // distinct words (and even a giant-array overlap only costs a bucket
        // collision, never a false equality).
        state.write_u64(self.packed ^ ((self.tag as u64) << 56) ^ ((self.input_idx as u64) << 48));
    }
}

/// Classification of a raw datastore key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedKey {
    /// A shared entry record.
    Entry(u64),
    /// A backward (output-cell) record.
    OutCell(Coord),
    /// A forward (input-cell) record for the given input index.
    InCell {
        /// Which input array the cell belongs to.
        input_idx: usize,
        /// The input cell.
        cell: Coord,
    },
}

/// Decodes a raw key back into its meaning, given the operator's shapes.
pub fn decode_key(
    out_shape: &Shape,
    in_shapes: &[Shape],
    key: &[u8],
) -> Result<DecodedKey, CodecError> {
    match key.first() {
        Some(&tag::ENTRY) => Ok(DecodedKey::Entry(codec::decode_fixed_u64(&key[1..])?)),
        Some(&tag::OUT_CELL) => {
            let packed = codec::decode_fixed_u64(&key[1..])?;
            Ok(DecodedKey::OutCell(codec::unpack_coord(out_shape, packed)?))
        }
        Some(&tag::IN_CELL) => {
            let input_idx = *key.get(1).ok_or(CodecError::UnexpectedEof)? as usize;
            let packed = codec::decode_fixed_u64(&key[2..])?;
            let shape = in_shapes.get(input_idx).ok_or(CodecError::UnexpectedEof)?;
            Ok(DecodedKey::InCell {
                input_idx,
                cell: codec::unpack_coord(shape, packed)?,
            })
        }
        _ => Err(CodecError::UnexpectedEof),
    }
}

/// Linear-index classification of a raw datastore key: the columnar scan
/// counterpart of [`DecodedKey`] — same accept/reject behaviour, but cells
/// stay packed (bounds-checked against the shapes' cell counts) so the scan
/// join never unravels a coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedKeyLinear {
    /// A shared entry record.
    Entry(u64),
    /// A backward (output-cell) record, as a linear index under the output
    /// shape.
    OutCell(u64),
    /// A forward (input-cell) record for the given input index, as a linear
    /// index under that input's shape.
    InCell {
        /// Which input array the cell belongs to.
        input_idx: usize,
        /// The input cell's linear index.
        index: u64,
    },
}

/// Decodes a raw key into its linear form, given the operator's cell counts
/// (`out_cells` = output shape cells, `in_cells[i]` = input `i` cells).
pub fn decode_key_linear(
    out_cells: u64,
    in_cells: &[u64],
    key: &[u8],
) -> Result<DecodedKeyLinear, CodecError> {
    match key.first() {
        Some(&tag::ENTRY) => Ok(DecodedKeyLinear::Entry(codec::decode_fixed_u64(&key[1..])?)),
        Some(&tag::OUT_CELL) => {
            let packed = codec::decode_fixed_u64(&key[1..])?;
            if packed >= out_cells {
                return Err(CodecError::IndexOutOfBounds {
                    index: packed,
                    num_cells: out_cells,
                });
            }
            Ok(DecodedKeyLinear::OutCell(packed))
        }
        Some(&tag::IN_CELL) => {
            let input_idx = *key.get(1).ok_or(CodecError::UnexpectedEof)? as usize;
            let packed = codec::decode_fixed_u64(&key[2..])?;
            let num_cells = *in_cells.get(input_idx).ok_or(CodecError::UnexpectedEof)?;
            if packed >= num_cells {
                return Err(CodecError::IndexOutOfBounds {
                    index: packed,
                    num_cells,
                });
            }
            Ok(DecodedKeyLinear::InCell {
                input_idx,
                index: packed,
            })
        }
        _ => Err(CodecError::UnexpectedEof),
    }
}

/// A decoded *full* entry body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FullEntry {
    /// Output cells of the region pair (empty when the encoding omits them —
    /// the backward `FullOne` layout stores only input cells because the
    /// output cell is the hash key).
    pub outcells: Vec<Coord>,
    /// Input cells per input array.
    pub incells: Vec<Vec<Coord>>,
}

/// Encodes a full entry body.
///
/// `include_outcells` selects between the `FullOne` layout (input cells only)
/// and the `FullMany` layout (both sides).
pub fn encode_full_entry(
    out_shape: &Shape,
    in_shapes: &[Shape],
    outcells: &[Coord],
    incells: &[Vec<Coord>],
    include_outcells: bool,
) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_full_entry_into(
        &mut buf,
        out_shape,
        in_shapes,
        outcells,
        incells,
        include_outcells,
    );
    buf
}

/// Appends the [`encode_full_entry`] encoding to `buf` (the arena variant:
/// the batched write path serialises every entry body of a region batch into
/// one contiguous buffer instead of allocating a `Vec` per entry).
pub fn encode_full_entry_into(
    buf: &mut Vec<u8>,
    out_shape: &Shape,
    in_shapes: &[Shape],
    outcells: &[Coord],
    incells: &[Vec<Coord>],
    include_outcells: bool,
) {
    buf.push(if include_outcells { 1 } else { 0 });
    if include_outcells {
        encode_cells_into(buf, out_shape, outcells);
    }
    write_varint(buf, incells.len() as u64);
    for (i, cells) in incells.iter().enumerate() {
        encode_cells_into(buf, &in_shapes[i], cells);
    }
}

/// Decodes a full entry body produced by [`encode_full_entry`].
pub fn decode_full_entry(
    out_shape: &Shape,
    in_shapes: &[Shape],
    buf: &[u8],
) -> Result<FullEntry, CodecError> {
    let mut pos = 0usize;
    let has_outcells = *buf.first().ok_or(CodecError::UnexpectedEof)? == 1;
    pos += 1;
    let outcells = if has_outcells {
        decode_cells_at(out_shape, buf, &mut pos)?
    } else {
        Vec::new()
    };
    let n_inputs = read_varint(buf, &mut pos)? as usize;
    let mut incells = Vec::with_capacity(n_inputs);
    for i in 0..n_inputs {
        let shape = in_shapes.get(i).ok_or(CodecError::UnexpectedEof)?;
        incells.push(decode_cells_at(shape, buf, &mut pos)?);
    }
    Ok(FullEntry { outcells, incells })
}

/// The two [`CellRun`]s of one full entry a scan join needs: where the entry's
/// output cells and the queried input's cells landed in the [`ScanFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullEntryRuns {
    /// The entry's output cells (empty run when the encoding omits them).
    pub outcells: CellRun,
    /// The entry's cells for the queried input index (empty run when the
    /// entry has fewer inputs than that).
    pub incells: CellRun,
}

/// Columnar counterpart of [`decode_full_entry`]: decodes the entry's output
/// cells and the cells of input `input_idx` into `frame` as linear-index
/// runs, *validating* (but not materialising) every other input's cells so a
/// body is accepted or rejected exactly as the legacy decoder would.  On
/// error the frame is rolled back to its pre-call length.
pub fn decode_full_entry_frame(
    frame: &mut ScanFrame,
    out_cells: u64,
    in_cells: &[u64],
    input_idx: usize,
    buf: &[u8],
) -> Result<FullEntryRuns, CodecError> {
    let mark = frame.len();
    let mut inner = || {
        let mut pos = 0usize;
        let has_outcells = *buf.first().ok_or(CodecError::UnexpectedEof)? == 1;
        pos += 1;
        let outcells = if has_outcells {
            decode_cells_block(frame, out_cells, buf, &mut pos)?
        } else {
            frame.empty_run()
        };
        let n_inputs = read_varint(buf, &mut pos)? as usize;
        let mut incells = frame.empty_run();
        for i in 0..n_inputs {
            let num_cells = *in_cells.get(i).ok_or(CodecError::UnexpectedEof)?;
            if i == input_idx {
                incells = decode_cells_block(frame, num_cells, buf, &mut pos)?;
            } else {
                skip_cells_block(num_cells, buf, &mut pos)?;
            }
        }
        Ok(FullEntryRuns { outcells, incells })
    };
    let result = inner();
    if result.is_err() {
        frame.truncate(mark);
    }
    result
}

/// Appends the entry ids of one cell-record value to `ids`, returning how
/// many were appended — the columnar counterpart of [`decode_entry_ids`]
/// (scan decoders collect all records' ids in one flat buffer instead of a
/// `Vec` per record).
pub fn decode_entry_ids_into(ids: &mut Vec<u64>, value: &[u8]) -> Result<usize, CodecError> {
    let before = ids.len();
    let mut pos = 0usize;
    while pos < value.len() {
        match read_varint(value, &mut pos) {
            Ok(id) => ids.push(id),
            Err(e) => {
                ids.truncate(before);
                return Err(e);
            }
        }
    }
    Ok(ids.len() - before)
}

/// A decoded *payload* entry body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PayEntry {
    /// Output cells of the region pair (empty for the `PayOne` layout, where
    /// the output cell is the hash key).
    pub outcells: Vec<Coord>,
    /// The developer-defined payload blob.
    pub payload: Vec<u8>,
}

/// Encodes a payload entry body (the `PayMany` layout: output cells followed
/// by the payload).
pub fn encode_pay_entry(out_shape: &Shape, outcells: &[Coord], payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_pay_entry_into(&mut buf, out_shape, outcells, payload);
    buf
}

/// Appends the [`encode_pay_entry`] encoding to `buf` (the arena variant).
pub fn encode_pay_entry_into(
    buf: &mut Vec<u8>,
    out_shape: &Shape,
    outcells: &[Coord],
    payload: &[u8],
) {
    encode_cells_into(buf, out_shape, outcells);
    encode_payload(buf, payload);
}

/// Decodes a payload entry body produced by [`encode_pay_entry`].
pub fn decode_pay_entry(out_shape: &Shape, buf: &[u8]) -> Result<PayEntry, CodecError> {
    let mut pos = 0usize;
    let outcells = decode_cells_at(out_shape, buf, &mut pos)?;
    let payload = decode_payload(buf, &mut pos)?;
    Ok(PayEntry { outcells, payload })
}

/// Appends one entry id to an entry-id-list value (the value format of cell
/// records for the `Full*` encodings).
pub fn append_entry_id(value: &mut Vec<u8>, entry_id: u64) {
    write_varint(value, entry_id);
}

/// Decodes an entry-id-list value.
pub fn decode_entry_ids(value: &[u8]) -> Result<Vec<u64>, CodecError> {
    let mut pos = 0usize;
    let mut ids = Vec::new();
    while pos < value.len() {
        ids.push(read_varint(value, &mut pos)?);
    }
    Ok(ids)
}

/// Appends one payload blob to a payload-list value (the value format of cell
/// records for the `PayOne` encoding, which duplicates the payload per cell).
pub fn append_payload(value: &mut Vec<u8>, payload: &[u8]) {
    encode_payload(value, payload);
}

/// Decodes a payload-list value.
pub fn decode_payloads(value: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
    let mut pos = 0usize;
    let mut payloads = Vec::new();
    while pos < value.len() {
        payloads.push(decode_payload(value, &mut pos)?);
    }
    Ok(payloads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> (Shape, Vec<Shape>) {
        (Shape::d2(8, 8), vec![Shape::d2(8, 8), Shape::d2(4, 4)])
    }

    #[test]
    fn key_roundtrips() {
        let (out_shape, in_shapes) = shapes();
        let ek = entry_key(42);
        assert_eq!(
            decode_key(&out_shape, &in_shapes, &ek).unwrap(),
            DecodedKey::Entry(42)
        );
        let ok = out_cell_key(&out_shape, &Coord::d2(3, 4));
        assert_eq!(
            decode_key(&out_shape, &in_shapes, &ok).unwrap(),
            DecodedKey::OutCell(Coord::d2(3, 4))
        );
        let ik = in_cell_key(&in_shapes[1], 1, &Coord::d2(2, 2));
        assert_eq!(
            decode_key(&out_shape, &in_shapes, &ik).unwrap(),
            DecodedKey::InCell {
                input_idx: 1,
                cell: Coord::d2(2, 2)
            }
        );
    }

    #[test]
    fn keys_are_distinct_across_tags_and_cells() {
        let (out_shape, in_shapes) = shapes();
        let a = out_cell_key(&out_shape, &Coord::d2(0, 1));
        let b = out_cell_key(&out_shape, &Coord::d2(1, 0));
        let c = in_cell_key(&in_shapes[0], 0, &Coord::d2(0, 1));
        let d = entry_key(1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(c, d);
    }

    #[test]
    fn full_entry_roundtrip_with_outcells() {
        let (out_shape, in_shapes) = shapes();
        let outcells = vec![Coord::d2(0, 1), Coord::d2(2, 3)];
        let incells = vec![
            vec![Coord::d2(4, 5), Coord::d2(6, 7)],
            vec![Coord::d2(0, 0)],
        ];
        let buf = encode_full_entry(&out_shape, &in_shapes, &outcells, &incells, true);
        let decoded = decode_full_entry(&out_shape, &in_shapes, &buf).unwrap();
        assert_eq!(decoded.outcells, outcells);
        assert_eq!(decoded.incells, incells);
    }

    #[test]
    fn full_entry_roundtrip_without_outcells() {
        let (out_shape, in_shapes) = shapes();
        let incells = vec![vec![Coord::d2(1, 1)], vec![]];
        let buf = encode_full_entry(&out_shape, &in_shapes, &[], &incells, false);
        let decoded = decode_full_entry(&out_shape, &in_shapes, &buf).unwrap();
        assert!(decoded.outcells.is_empty());
        assert_eq!(decoded.incells, incells);
        // The FullOne layout must be strictly smaller than the FullMany one
        // for the same pair (that is its reason to exist).
        let with = encode_full_entry(
            &out_shape,
            &in_shapes,
            &[Coord::d2(0, 0), Coord::d2(1, 1)],
            &incells,
            true,
        );
        assert!(buf.len() < with.len());
    }

    #[test]
    fn full_entry_frame_decode_matches_legacy() {
        let (out_shape, in_shapes) = shapes();
        let out_cells = out_shape.num_cells() as u64;
        let in_cells: Vec<u64> = in_shapes.iter().map(|s| s.num_cells() as u64).collect();
        let outcells = vec![Coord::d2(0, 1), Coord::d2(2, 3)];
        let incells = vec![
            vec![Coord::d2(4, 5), Coord::d2(6, 7)],
            vec![Coord::d2(0, 0), Coord::d2(3, 3)],
        ];
        let mut frame = ScanFrame::new();
        for include in [true, false] {
            for input_idx in 0..in_shapes.len() {
                let buf = encode_full_entry(&out_shape, &in_shapes, &outcells, &incells, include);
                let legacy = decode_full_entry(&out_shape, &in_shapes, &buf).unwrap();
                let runs =
                    decode_full_entry_frame(&mut frame, out_cells, &in_cells, input_idx, &buf)
                        .unwrap();
                let packed = |shape: &Shape, cs: &[Coord]| {
                    cs.iter()
                        .map(|c| codec::pack_coord(shape, c))
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    frame.run(runs.outcells),
                    packed(&out_shape, &legacy.outcells).as_slice(),
                    "outcells include={include} input={input_idx}"
                );
                assert_eq!(
                    frame.run(runs.incells),
                    packed(&in_shapes[input_idx], &legacy.incells[input_idx]).as_slice(),
                    "incells include={include} input={input_idx}"
                );
            }
        }

        // Rejection parity: a body whose *other* input is corrupt fails the
        // frame decode too (skip validates), leaving the frame untouched.
        let mut corrupt = encode_full_entry(&out_shape, &in_shapes, &outcells, &incells, true);
        corrupt.truncate(corrupt.len() - 1);
        assert!(decode_full_entry(&out_shape, &in_shapes, &corrupt).is_err());
        let before = frame.len();
        assert!(decode_full_entry_frame(&mut frame, out_cells, &in_cells, 0, &corrupt).is_err());
        assert_eq!(frame.len(), before, "failed decode left cells behind");
    }

    #[test]
    fn linear_key_decode_matches_decode_key() {
        let (out_shape, in_shapes) = shapes();
        let out_cells = out_shape.num_cells() as u64;
        let in_cells: Vec<u64> = in_shapes.iter().map(|s| s.num_cells() as u64).collect();
        for key in [
            entry_key(42),
            out_cell_key(&out_shape, &Coord::d2(3, 4)),
            in_cell_key(&in_shapes[1], 1, &Coord::d2(2, 2)),
        ] {
            let linear = decode_key_linear(out_cells, &in_cells, &key).unwrap();
            match decode_key(&out_shape, &in_shapes, &key).unwrap() {
                DecodedKey::Entry(id) => assert_eq!(linear, DecodedKeyLinear::Entry(id)),
                DecodedKey::OutCell(c) => assert_eq!(
                    linear,
                    DecodedKeyLinear::OutCell(codec::pack_coord(&out_shape, &c))
                ),
                DecodedKey::InCell { input_idx, cell } => assert_eq!(
                    linear,
                    DecodedKeyLinear::InCell {
                        input_idx,
                        index: codec::pack_coord(&in_shapes[input_idx], &cell),
                    }
                ),
            }
        }
        // Rejection parity with decode_key.
        assert!(decode_key_linear(out_cells, &in_cells, &[]).is_err());
        assert!(decode_key_linear(out_cells, &in_cells, b"zzzz").is_err());
        let mut bad = in_cell_key(&in_shapes[0], 0, &Coord::d2(0, 0));
        bad[1] = 9;
        assert!(decode_key_linear(out_cells, &in_cells, &bad).is_err());
    }

    #[test]
    fn entry_ids_into_matches_decode_entry_ids() {
        let mut value = Vec::new();
        append_entry_id(&mut value, 7);
        append_entry_id(&mut value, 300);
        let mut flat = vec![99u64];
        assert_eq!(decode_entry_ids_into(&mut flat, &value).unwrap(), 2);
        assert_eq!(flat, vec![99, 7, 300]);
        // A torn id list rolls the flat buffer back.
        let torn = vec![0x80u8];
        assert!(decode_entry_ids_into(&mut flat, &torn).is_err());
        assert_eq!(flat, vec![99, 7, 300]);
    }

    #[test]
    fn pay_entry_roundtrip() {
        let (out_shape, _) = shapes();
        let outcells = vec![Coord::d2(7, 7)];
        let payload = vec![3, 0, 0, 0];
        let buf = encode_pay_entry(&out_shape, &outcells, &payload);
        let decoded = decode_pay_entry(&out_shape, &buf).unwrap();
        assert_eq!(decoded.outcells, outcells);
        assert_eq!(decoded.payload, payload);
    }

    #[test]
    fn pay_entry_empty_payload() {
        let (out_shape, _) = shapes();
        let buf = encode_pay_entry(&out_shape, &[Coord::d2(0, 0)], &[]);
        let decoded = decode_pay_entry(&out_shape, &buf).unwrap();
        assert!(decoded.payload.is_empty());
    }

    #[test]
    fn entry_id_lists_merge_by_appending() {
        let mut value = Vec::new();
        append_entry_id(&mut value, 7);
        append_entry_id(&mut value, 300);
        append_entry_id(&mut value, 7);
        assert_eq!(decode_entry_ids(&value).unwrap(), vec![7, 300, 7]);
        assert_eq!(decode_entry_ids(&[]).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn payload_lists_merge_by_appending() {
        let mut value = Vec::new();
        append_payload(&mut value, &[1, 2, 3]);
        append_payload(&mut value, &[]);
        append_payload(&mut value, &[9]);
        assert_eq!(
            decode_payloads(&value).unwrap(),
            vec![vec![1, 2, 3], vec![], vec![9]]
        );
    }

    #[test]
    fn packed_cell_keys_match_byte_keys() {
        let (out_shape, in_shapes) = shapes();
        for cell in [Coord::d2(0, 0), Coord::d2(7, 7), Coord::d2(3, 4)] {
            assert_eq!(
                PackedCellKey::out_cell(&out_shape, &cell).to_bytes(),
                out_cell_key(&out_shape, &cell)
            );
        }
        let cell = Coord::d2(2, 3);
        for (idx, in_shape) in in_shapes.iter().enumerate() {
            assert_eq!(
                PackedCellKey::in_cell(in_shape, idx, &cell).to_bytes(),
                in_cell_key(in_shape, idx, &cell)
            );
        }
        // Same cell, different key space => different packed keys.
        assert_ne!(
            PackedCellKey::out_cell(&out_shape, &cell),
            PackedCellKey::in_cell(&in_shapes[0], 0, &cell)
        );
        assert_ne!(
            PackedCellKey::in_cell(&in_shapes[0], 0, &cell),
            PackedCellKey::in_cell(&in_shapes[0], 1, &cell)
        );
    }

    #[test]
    fn arena_entry_encoders_match_legacy() {
        let (out_shape, in_shapes) = shapes();
        let outcells = vec![Coord::d2(0, 1), Coord::d2(2, 3)];
        let incells = vec![vec![Coord::d2(4, 5)], vec![Coord::d2(1, 1)]];
        let mut arena = subzero_store::Arena::new();

        let start = arena.begin();
        entry_key_into(arena.buf_mut(), 42);
        let span = arena.finish(start);
        assert_eq!(arena.get(span), entry_key(42).as_slice());

        for include in [true, false] {
            let start = arena.begin();
            encode_full_entry_into(
                arena.buf_mut(),
                &out_shape,
                &in_shapes,
                &outcells,
                &incells,
                include,
            );
            let span = arena.finish(start);
            assert_eq!(
                arena.get(span),
                encode_full_entry(&out_shape, &in_shapes, &outcells, &incells, include).as_slice()
            );
        }

        let start = arena.begin();
        encode_pay_entry_into(arena.buf_mut(), &out_shape, &outcells, b"payload");
        let span = arena.finish(start);
        assert_eq!(
            arena.get(span),
            encode_pay_entry(&out_shape, &outcells, b"payload").as_slice()
        );
    }

    #[test]
    fn decode_key_rejects_garbage() {
        let (out_shape, in_shapes) = shapes();
        assert!(decode_key(&out_shape, &in_shapes, &[]).is_err());
        assert!(decode_key(&out_shape, &in_shapes, b"zzzz").is_err());
        // An in-cell key referencing a non-existent input index fails.
        let mut bad = in_cell_key(&in_shapes[0], 0, &Coord::d2(0, 0));
        bad[1] = 9;
        assert!(decode_key(&out_shape, &in_shapes, &bad).is_err());
    }
}
