//! Deriving query answers from traced region pairs.
//!
//! When an operator only has black-box lineage, the query executor re-runs it
//! in tracing mode (`cur_modes = [Full]`); the operator's `lwrite()` calls are
//! captured in memory and joined against the query cells here (§V-B of the
//! paper).  The same helpers are used by tests as a trusted oracle for the
//! stored-lineage paths.

use subzero_array::CellSet;
use subzero_engine::{OpMeta, Operator, RegionPair};

/// Joins traced pairs against backward-query cells: returns the cells of
/// input `input_idx` that any queried output cell depends on.
pub fn backward_from_pairs(
    pairs: &[RegionPair],
    query: &CellSet,
    input_idx: usize,
    op: &dyn Operator,
    meta: &OpMeta,
) -> CellSet {
    let mut result = CellSet::empty(meta.input_shapes[input_idx]);
    for pair in pairs {
        match pair {
            RegionPair::Full { outcells, incells } => {
                if outcells.iter().any(|c| query.contains(c)) {
                    for c in incells.get(input_idx).into_iter().flatten() {
                        result.insert(c);
                    }
                }
            }
            RegionPair::Payload { outcells, payload } => {
                for oc in outcells.iter().filter(|c| query.contains(c)) {
                    for c in op
                        .map_payload(oc, payload, input_idx, meta)
                        .unwrap_or_default()
                    {
                        result.insert(&c);
                    }
                }
            }
        }
    }
    result
}

/// Joins traced pairs against forward-query cells: returns the output cells
/// that depend on any queried cell of input `input_idx`.
pub fn forward_from_pairs(
    pairs: &[RegionPair],
    query: &CellSet,
    input_idx: usize,
    op: &dyn Operator,
    meta: &OpMeta,
) -> CellSet {
    let mut result = CellSet::empty(meta.output_shape);
    for pair in pairs {
        match pair {
            RegionPair::Full { outcells, incells } => {
                let hit = incells
                    .get(input_idx)
                    .into_iter()
                    .flatten()
                    .any(|c| query.contains(c));
                if hit {
                    for c in outcells {
                        result.insert(c);
                    }
                }
            }
            RegionPair::Payload { outcells, payload } => {
                for oc in outcells {
                    let incells = op
                        .map_payload(oc, payload, input_idx, meta)
                        .unwrap_or_default();
                    if incells.iter().any(|c| query.contains(c)) {
                        result.insert(oc);
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use subzero_array::{Array, ArrayRef, Coord, Shape};
    use subzero_engine::{LineageMode, LineageSink};

    struct RadiusOp;

    impl Operator for RadiusOp {
        fn name(&self) -> &str {
            "radius"
        }
        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }
        fn run(&self, inputs: &[ArrayRef], _m: &[LineageMode], _s: &mut dyn LineageSink) -> Array {
            (*inputs[0]).clone()
        }
        fn map_payload(
            &self,
            outcell: &Coord,
            payload: &[u8],
            _i: usize,
            meta: &OpMeta,
        ) -> Option<Vec<Coord>> {
            let r = payload.first().copied().unwrap_or(0) as u32;
            Some(meta.input_shape(0).neighborhood(outcell, r))
        }
    }

    fn meta() -> OpMeta {
        OpMeta::new(vec![Shape::d2(6, 6), Shape::d2(6, 6)], Shape::d2(6, 6))
    }

    #[test]
    fn backward_join_full_pairs() {
        let m = meta();
        let pairs = vec![
            RegionPair::Full {
                outcells: vec![Coord::d2(0, 0)],
                incells: vec![vec![Coord::d2(1, 1)], vec![Coord::d2(2, 2)]],
            },
            RegionPair::Full {
                outcells: vec![Coord::d2(5, 5)],
                incells: vec![vec![Coord::d2(4, 4)], vec![]],
            },
        ];
        let q = CellSet::from_coords(Shape::d2(6, 6), [Coord::d2(0, 0)]);
        let r = backward_from_pairs(&pairs, &q, 0, &RadiusOp, &m);
        assert_eq!(r.to_coords(), vec![Coord::d2(1, 1)]);
        let r1 = backward_from_pairs(&pairs, &q, 1, &RadiusOp, &m);
        assert_eq!(r1.to_coords(), vec![Coord::d2(2, 2)]);
        // Querying a cell with no pairs yields nothing.
        let q = CellSet::from_coords(Shape::d2(6, 6), [Coord::d2(3, 3)]);
        assert!(backward_from_pairs(&pairs, &q, 0, &RadiusOp, &m).is_empty());
    }

    #[test]
    fn forward_join_full_pairs() {
        let m = meta();
        let pairs = vec![RegionPair::Full {
            outcells: vec![Coord::d2(0, 0), Coord::d2(0, 1)],
            incells: vec![vec![Coord::d2(1, 1)], vec![]],
        }];
        let q = CellSet::from_coords(Shape::d2(6, 6), [Coord::d2(1, 1)]);
        let r = forward_from_pairs(&pairs, &q, 0, &RadiusOp, &m);
        assert_eq!(r.len(), 2);
        // The same query against input 1 finds nothing (its cell list is empty).
        assert!(forward_from_pairs(&pairs, &q, 1, &RadiusOp, &m).is_empty());
    }

    #[test]
    fn payload_pairs_resolved_through_map_payload() {
        let m = meta();
        let pairs = vec![RegionPair::Payload {
            outcells: vec![Coord::d2(3, 3)],
            payload: vec![1],
        }];
        let q = CellSet::from_coords(Shape::d2(6, 6), [Coord::d2(3, 3)]);
        let r = backward_from_pairs(&pairs, &q, 0, &RadiusOp, &m);
        assert_eq!(r.len(), 9, "radius-1 neighbourhood");

        // Forward: an input cell adjacent to (3,3) influenced it.
        let q = CellSet::from_coords(Shape::d2(6, 6), [Coord::d2(2, 3)]);
        let r = forward_from_pairs(&pairs, &q, 0, &RadiusOp, &m);
        assert_eq!(r.to_coords(), vec![Coord::d2(3, 3)]);
        // A far-away input cell did not.
        let q = CellSet::from_coords(Shape::d2(6, 6), [Coord::d2(5, 0)]);
        assert!(forward_from_pairs(&pairs, &q, 0, &RadiusOp, &m).is_empty());
    }
}
