//! The sanctioned gateway to synchronization and threading primitives.
//!
//! Every sync/thread primitive used by this crate's concurrent runtimes —
//! the async capture pipeline ([`crate::capture`]) and the scoped worker
//! helpers ([`crate::parallel`]) — is imported from this module, **never**
//! from `std::sync`/`std::thread` directly.  The indirection is what makes
//! the concurrency model-checkable:
//!
//! * In a normal build this module re-exports `std::sync` and `std::thread`
//!   verbatim — zero abstraction cost, identical runtime behaviour.
//! * Under `RUSTFLAGS="--cfg loom"` it re-exports the loom shim
//!   (`crates/shims/loom`) instead: every mutex acquire, condvar
//!   wait/notify, atomic access, spawn and join becomes a scheduling point,
//!   and the `tests/loom.rs` suite runs the capture-queue and parallel-map
//!   code under *every* thread interleaving, not just the ones the host
//!   scheduler happens to produce.
//!
//! Direct `std::sync`/`std::thread` imports elsewhere in the workspace are
//! banned by `cargo xtask lint` (the `sync-gateway` lint): code that
//! bypasses this module silently escapes the model checker, so tests could
//! pass while an unexplored interleaving deadlocks or corrupts state in
//! production.  `std::sync::Arc` is exempt — it is pure reference counting
//! with no blocking or ordering behaviour worth exploring, and both cfgs
//! re-export it unchanged.
//!
//! ## Lock poisoning
//!
//! Library code must not `.unwrap()`/`.expect()` lock results (enforced by
//! the `lock-unwrap` lint): a panicking flusher would poison the mutex and
//! turn every later harvest or statistics read into a second panic,
//! cascading one failure into a wedged runtime.  Use [`lock_or_recover`] /
//! [`wait_or_recover`] instead — lineage state guarded by these locks is
//! kept consistent *by construction* (writers catch panics before
//! unwinding across an update, see [`crate::capture`]), so recovering a
//! poisoned guard is always sound here.

#[cfg(not(loom))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub mod atomic {
    //! Re-export of [`std::sync::atomic`] (loom-aware under `--cfg loom`).
    pub use std::sync::atomic::*;
}

#[cfg(not(loom))]
pub mod thread {
    //! Re-export of [`std::thread`] (loom-aware under `--cfg loom`).
    pub use std::thread::*;
}

#[cfg(loom)]
pub use ::loom::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(loom)]
pub mod atomic {
    //! Model-checked atomics from the loom shim.
    pub use ::loom::sync::atomic::*;
}

#[cfg(loom)]
pub mod thread {
    //! Model-checked threads from the loom shim.
    pub use ::loom::thread::*;
}

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// See the module docs for why recovery (rather than propagating the
/// poison panic) is correct for every lock in this crate.
pub fn lock_or_recover<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Waits on `condvar`, recovering the reacquired guard if another holder
/// panicked while the caller slept.
pub fn wait_or_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn lock_or_recover_returns_working_guard() {
        let m = Mutex::new(7u32);
        *lock_or_recover(&m) += 1;
        assert_eq!(*lock_or_recover(&m), 8);
    }

    #[test]
    fn lock_or_recover_survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the mutex");
        })
        .join();
        assert!(m.lock().is_err(), "mutex must actually be poisoned");
        *lock_or_recover(&m) = 5;
        assert_eq!(*lock_or_recover(&m), 5);
    }

    #[test]
    fn wait_or_recover_round_trips() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*state2;
            *lock_or_recover(m) = true;
            cv.notify_all();
        });
        let (m, cv) = &*state;
        let mut ready = lock_or_recover(m);
        while !*ready {
            ready = wait_or_recover(cv, ready);
        }
        drop(ready);
        waker.join().unwrap();
    }
}
