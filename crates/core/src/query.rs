//! The lineage query executor.
//!
//! "The Query Executor iteratively executes each step in the lineage query
//! path by joining the lineage with the coordinates of the query cells, or
//! the intermediate cells generated from the previous step." (§VI-C)
//!
//! A [`LineageQuery`] names an initial set of cells and a path of
//! `(operator, input index)` steps; the executor walks the path backward
//! (toward the workflow inputs) or forward (toward the outputs), producing a
//! [`CellSet`] intermediate per step.  Each step is answered by one of:
//!
//! * the operator's **mapping functions** (free — nothing was stored),
//! * **materialised region lineage** from the operator's datastores
//!   (for composite lineage, combined with the default mapping function),
//! * **re-execution** of the operator in tracing mode (black-box lineage),
//! * the **entire-array optimization**: when every cell of the intermediate
//!   is set and the operator is annotated all-to-all, the step's answer is
//!   the entire input/output array without touching any lineage.
//!
//! The **query-time optimizer** (§VII-A) decides between materialised lineage
//! and re-execution using the statistics gathered at capture time, bounding
//! the worst case to roughly the cost of the black-box approach.

use std::fmt;
use std::time::{Duration, Instant};

use subzero_array::{CellSet, Coord};
use subzero_engine::executor::{EngineError, WorkflowRun};
use subzero_engine::{Engine, LineageMode, OpId, OperatorExt};

use crate::model::Direction;
use crate::reexec;
use crate::runtime::Runtime;

/// Errors produced while executing a lineage query.
#[derive(Debug)]
pub enum QueryError {
    /// The query path was empty.
    EmptyPath,
    /// A path step referenced an input index the operator does not have.
    BadInputIndex {
        /// The operator.
        op: OpId,
        /// The requested input index.
        input_idx: usize,
    },
    /// The cells flowing into a step did not match the array they should
    /// belong to (the path is inconsistent with the workflow graph).
    PathMismatch {
        /// The step at which the mismatch was detected (0-based).
        step: usize,
        /// Description of the mismatch.
        detail: String,
    },
    /// An engine-level failure (missing run record, missing array version).
    Engine(EngineError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyPath => write!(f, "lineage query path is empty"),
            QueryError::BadInputIndex { op, input_idx } => {
                write!(f, "operator {op} has no input {input_idx}")
            }
            QueryError::PathMismatch { step, detail } => {
                write!(f, "query path inconsistent at step {step}: {detail}")
            }
            QueryError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<EngineError> for QueryError {
    fn from(e: EngineError) -> Self {
        QueryError::Engine(e)
    }
}

/// A lineage query: a set of starting cells and a path of
/// `(operator, input index)` steps to trace through.
#[derive(Clone, Debug, PartialEq)]
pub struct LineageQuery {
    /// The starting cells (output cells of the first path operator for a
    /// backward query; cells of its `input index`'th input for a forward
    /// query).
    pub cells: Vec<Coord>,
    /// The path of `(operator, input index)` steps, ordered from the query's
    /// starting operator toward its destination.
    pub path: Vec<(OpId, usize)>,
    /// Whether the path walks backward (toward inputs) or forward (toward
    /// outputs).
    pub direction: Direction,
}

impl LineageQuery {
    /// A backward query: trace `cells` (output cells of `path[0].0`) back
    /// through the path toward the workflow inputs.
    pub fn backward(cells: Vec<Coord>, path: Vec<(OpId, usize)>) -> Self {
        LineageQuery {
            cells,
            path,
            direction: Direction::Backward,
        }
    }

    /// A forward query: trace `cells` (cells of input `path[0].1` of
    /// `path[0].0`) forward through the path toward the workflow outputs.
    pub fn forward(cells: Vec<Coord>, path: Vec<(OpId, usize)>) -> Self {
        LineageQuery {
            cells,
            path,
            direction: Direction::Forward,
        }
    }
}

/// How one step of a query was answered.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StepMethod {
    /// Forward/backward mapping functions.
    Mapping,
    /// Materialised region lineage.
    Stored,
    /// Materialised lineage combined with the default mapping function
    /// (composite lineage).
    StoredPlusMapping,
    /// Operator re-execution in tracing mode (black-box lineage).
    Reexecution,
    /// The entire-array optimization short-circuited the step.
    EntireArray,
}

impl fmt::Display for StepMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StepMethod::Mapping => "mapping",
            StepMethod::Stored => "stored",
            StepMethod::StoredPlusMapping => "stored+mapping",
            StepMethod::Reexecution => "re-execution",
            StepMethod::EntireArray => "entire-array",
        };
        f.write_str(s)
    }
}

/// Per-step execution report.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// The operator traversed.
    pub op_id: OpId,
    /// The input index traversed.
    pub input_idx: usize,
    /// How the step was answered.
    pub method: StepMethod,
    /// Step wall-clock time.
    pub elapsed: Duration,
    /// Number of cells in the step's result.
    pub result_cells: usize,
    /// Whether a stored-lineage lookup had to scan the whole datastore
    /// because the index direction did not match.
    pub scanned: bool,
}

/// Whole-query execution report.
#[derive(Clone, Debug, Default)]
pub struct QueryReport {
    /// Reports for each step, in traversal order.
    pub steps: Vec<StepReport>,
    /// Total query wall-clock time.
    pub total_elapsed: Duration,
}

impl QueryReport {
    /// Number of steps answered by re-execution.
    pub fn reexecutions(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.method == StepMethod::Reexecution)
            .count()
    }

    /// Whether any step required a full datastore scan.
    pub fn any_scan(&self) -> bool {
        self.steps.iter().any(|s| s.scanned)
    }
}

/// The result of a lineage query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The cells of the destination array the query resolved to.
    pub cells: CellSet,
    /// Per-step diagnostics.
    pub report: QueryReport,
}

/// Tuning knobs of the query executor.
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Enable the entire-array optimization (§VI-C).
    pub entire_array_optimization: bool,
    /// Enable the query-time optimizer (§VII-A): fall back to re-execution
    /// when the materialised lineage is predicted (or observed) to be slower.
    pub query_time_optimizer: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            entire_array_optimization: true,
            query_time_optimizer: true,
        }
    }
}

/// The query-time optimizer's cost thresholds.
///
/// The estimates are deliberately coarse — a per-entry fetch cost and a
/// per-cell mapping cost — because all the decision needs is the order of
/// magnitude: indexed lookups touching a handful of entries versus a full
/// scan of a datastore versus re-running the operator.
#[derive(Clone, Copy, Debug)]
pub struct QueryTimePolicy {
    /// Estimated cost of fetching and decoding one hash entry.
    pub entry_cost: Duration,
    /// Estimated cost of applying a mapping function to one cell.
    pub map_cost: Duration,
    /// Stored-lineage access is abandoned in favour of re-execution when its
    /// estimate exceeds this multiple of the re-execution estimate (the paper
    /// bounds the worst case to 2× the black-box approach).
    pub reexec_multiple: f64,
}

impl Default for QueryTimePolicy {
    fn default() -> Self {
        QueryTimePolicy {
            entry_cost: Duration::from_micros(3),
            map_cost: Duration::from_nanos(300),
            reexec_multiple: 2.0,
        }
    }
}

impl QueryTimePolicy {
    /// Estimates the cost of answering a step from stored lineage.
    pub fn stored_estimate(
        &self,
        serving: bool,
        query_cells: usize,
        total_entries: usize,
    ) -> Duration {
        let entries = if serving {
            query_cells.min(total_entries.max(1))
        } else {
            total_entries
        };
        self.entry_cost * entries.max(1) as u32
    }

    /// Whether stored lineage should be used instead of re-execution.
    pub fn prefer_stored(
        &self,
        serving: bool,
        query_cells: usize,
        total_entries: usize,
        reexec_estimate: Duration,
    ) -> bool {
        let stored = self.stored_estimate(serving, query_cells, total_entries);
        stored.as_secs_f64() <= reexec_estimate.as_secs_f64() * self.reexec_multiple
    }
}

/// Executes lineage queries against one engine + runtime pair.
pub struct QueryExecutor<'a> {
    engine: &'a Engine,
    runtime: &'a mut Runtime,
    options: QueryOptions,
    policy: QueryTimePolicy,
}

impl<'a> QueryExecutor<'a> {
    /// Creates an executor with default options.
    pub fn new(engine: &'a Engine, runtime: &'a mut Runtime) -> Self {
        QueryExecutor {
            engine,
            runtime,
            options: QueryOptions::default(),
            policy: QueryTimePolicy::default(),
        }
    }

    /// Overrides the executor options.
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the query-time policy.
    pub fn with_policy(mut self, policy: QueryTimePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Executes a lineage query against a previously executed workflow run.
    pub fn execute(
        &mut self,
        run: &WorkflowRun,
        query: &LineageQuery,
    ) -> Result<QueryResult, QueryError> {
        if query.path.is_empty() {
            return Err(QueryError::EmptyPath);
        }
        let start = Instant::now();
        let mut report = QueryReport::default();

        // Build the initial cell set over the array the query cells belong to.
        let (first_op, first_idx) = query.path[0];
        let first_record = run.record(first_op)?;
        let initial_shape =
            match query.direction {
                Direction::Backward => first_record.meta.output_shape,
                Direction::Forward => *first_record.meta.input_shapes.get(first_idx).ok_or(
                    QueryError::BadInputIndex {
                        op: first_op,
                        input_idx: first_idx,
                    },
                )?,
            };
        let mut current = CellSet::from_coords(initial_shape, query.cells.iter().copied());

        for (step, &(op_id, input_idx)) in query.path.iter().enumerate() {
            let record = run.record(op_id)?;
            let meta = &record.meta;
            if input_idx >= meta.input_shapes.len() {
                return Err(QueryError::BadInputIndex {
                    op: op_id,
                    input_idx,
                });
            }
            // Validate that the incoming cells live in the right array.
            let expected = match query.direction {
                Direction::Backward => meta.output_shape,
                Direction::Forward => meta.input_shapes[input_idx],
            };
            if current.shape() != expected {
                return Err(QueryError::PathMismatch {
                    step,
                    detail: format!(
                        "cells are over {} but operator {} expects {}",
                        current.shape(),
                        op_id,
                        expected
                    ),
                });
            }

            let step_start = Instant::now();
            let node = run.workflow.node(op_id).map_err(EngineError::Workflow)?;
            let op = node.operator.as_ref();
            let target_shape = match query.direction {
                Direction::Backward => meta.input_shapes[input_idx],
                Direction::Forward => meta.output_shape,
            };

            // --- Entire-array optimization --------------------------------
            // Two cases (§VI-C): (a) the operator is all-to-all, so any
            // non-empty intermediate spans the whole target array; (b) the
            // intermediate already covers its whole array and the operator is
            // annotated as safe to span across in this direction.
            let backward = query.direction == Direction::Backward;
            let entire = self.options.entire_array_optimization
                && ((op.all_to_all() && !current.is_empty())
                    || (current.is_full() && op.spans_entire_array(input_idx, backward)));
            if entire {
                current = CellSet::full(target_shape);
                report.steps.push(StepReport {
                    op_id,
                    input_idx,
                    method: StepMethod::EntireArray,
                    elapsed: step_start.elapsed(),
                    result_cells: current.len(),
                    scanned: false,
                });
                continue;
            }

            // --- Choose the step method -----------------------------------
            let strategies = self.runtime.strategies_for(op_id);
            let has_stored = self.runtime.has_lineage(run.run_id, op_id);
            let explicit_map = strategies.iter().any(|s| s.mode == LineageMode::Map);
            // An explicit all-Blackbox assignment means "re-run this operator
            // at query time even if it has mapping functions" — that is what
            // the paper's BlackBox baseline does for every operator.
            let forced_blackbox = !strategies.is_empty()
                && strategies.iter().all(|s| s.mode == LineageMode::Blackbox);
            let use_mapping_only = if forced_blackbox {
                false
            } else if has_stored {
                explicit_map
            } else {
                // No materialised lineage: a mapping operator answers from its
                // mapping functions; anything else re-executes.
                op.is_mapping()
            };

            let mut method;
            let mut scanned = false;
            let mut result;
            if forced_blackbox {
                result =
                    self.reexecute(run, op_id, op, meta, &current, input_idx, query.direction)?;
                method = StepMethod::Reexecution;
            } else if use_mapping_only {
                result = self.apply_mapping(op, meta, &current, input_idx, query.direction);
                method = StepMethod::Mapping;
            } else if has_stored {
                // Decide between stored lineage and re-execution.
                let serving = strategies
                    .iter()
                    .any(|s| s.stores_pairs() && s.serves(query.direction));
                let total_entries: usize = self
                    .runtime
                    .datastores(run.run_id, op_id)
                    .iter()
                    .map(|d| d.num_entries())
                    .max()
                    .unwrap_or(0);
                let reexec_estimate = record.elapsed;
                let use_stored = !self.options.query_time_optimizer
                    || self.policy.prefer_stored(
                        serving,
                        current.len(),
                        total_entries,
                        reexec_estimate,
                    );
                if use_stored {
                    let (r, covered, did_scan) = self.lookup_stored(
                        run.run_id,
                        op_id,
                        op,
                        meta,
                        &current,
                        input_idx,
                        query.direction,
                    );
                    scanned = did_scan;
                    result = r;
                    method = StepMethod::Stored;
                    // Composite lineage: the stored pairs only cover the
                    // exceptional cells; the rest follow the default mapping.
                    let is_composite = strategies.iter().any(|s| s.mode == LineageMode::Comp);
                    if is_composite {
                        let default = match query.direction {
                            Direction::Backward => {
                                let uncovered: Vec<Coord> =
                                    current.iter().filter(|c| !covered.contains(c)).collect();
                                let uncovered_set =
                                    CellSet::from_coords(current.shape(), uncovered);
                                self.apply_mapping(
                                    op,
                                    meta,
                                    &uncovered_set,
                                    input_idx,
                                    query.direction,
                                )
                            }
                            Direction::Forward => {
                                // Every query cell keeps its default forward
                                // relationship in addition to any stored
                                // overrides.
                                self.apply_mapping(op, meta, &current, input_idx, query.direction)
                            }
                        };
                        result.union_with(&default);
                        method = StepMethod::StoredPlusMapping;
                    }
                } else {
                    result =
                        self.reexecute(run, op_id, op, meta, &current, input_idx, query.direction)?;
                    method = StepMethod::Reexecution;
                }
            } else {
                result =
                    self.reexecute(run, op_id, op, meta, &current, input_idx, query.direction)?;
                method = StepMethod::Reexecution;
            }

            current = result;
            report.steps.push(StepReport {
                op_id,
                input_idx,
                method,
                elapsed: step_start.elapsed(),
                result_cells: current.len(),
                scanned,
            });
        }

        report.total_elapsed = start.elapsed();
        Ok(QueryResult {
            cells: current,
            report,
        })
    }

    fn apply_mapping(
        &self,
        op: &dyn subzero_engine::Operator,
        meta: &subzero_engine::OpMeta,
        current: &CellSet,
        input_idx: usize,
        direction: Direction,
    ) -> CellSet {
        let target_shape = match direction {
            Direction::Backward => meta.input_shapes[input_idx],
            Direction::Forward => meta.output_shape,
        };
        let mut result = CellSet::empty(target_shape);
        for cell in current.iter() {
            let mapped = match direction {
                Direction::Backward => op.map_backward(&cell, input_idx, meta),
                Direction::Forward => op.map_forward(&cell, input_idx, meta),
            };
            for c in mapped.unwrap_or_default() {
                if target_shape.contains(&c) {
                    result.insert(&c);
                }
            }
            // Saturated intermediates cannot grow further; stop early.
            if result.is_full() {
                break;
            }
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn lookup_stored(
        &mut self,
        run_id: u64,
        op_id: OpId,
        op: &dyn subzero_engine::Operator,
        meta: &subzero_engine::OpMeta,
        current: &CellSet,
        input_idx: usize,
        direction: Direction,
    ) -> (CellSet, CellSet, bool) {
        // Prefer a datastore whose index direction matches the query; fall
        // back to any available one (which will scan).
        let stores = self.runtime.datastores(run_id, op_id);
        let pick = stores
            .iter()
            .position(|d| d.strategy().serves(direction))
            .or(if stores.is_empty() { None } else { Some(0) });
        let Some(idx) = pick else {
            let target_shape = match direction {
                Direction::Backward => meta.input_shapes[input_idx],
                Direction::Forward => meta.output_shape,
            };
            let source_shape = current.shape();
            return (
                CellSet::empty(target_shape),
                CellSet::empty(source_shape),
                false,
            );
        };
        let outcome = match direction {
            Direction::Backward => stores[idx].lookup_backward(current, input_idx, op, meta),
            Direction::Forward => stores[idx].lookup_forward(current, input_idx, op, meta),
        };
        (outcome.result, outcome.covered, outcome.scanned)
    }

    #[allow(clippy::too_many_arguments)]
    fn reexecute(
        &self,
        run: &WorkflowRun,
        op_id: OpId,
        op: &dyn subzero_engine::Operator,
        meta: &subzero_engine::OpMeta,
        current: &CellSet,
        input_idx: usize,
        direction: Direction,
    ) -> Result<CellSet, QueryError> {
        let (pairs, _elapsed) = self.engine.rerun_tracing(run, op_id)?;
        Ok(match direction {
            Direction::Backward => {
                reexec::backward_from_pairs(&pairs, current, input_idx, op, meta)
            }
            Direction::Forward => reexec::forward_from_pairs(&pairs, current, input_idx, op, meta),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LineageStrategy, StorageStrategy};
    use std::collections::HashMap;
    use std::sync::Arc;
    use subzero_array::{Array, Shape};
    use subzero_engine::ops::{AggregateKind, Convolve, Elementwise1, GlobalAggregate, UnaryKind};
    use subzero_engine::Workflow;

    /// scale -> convolve(r=1) -> global mean
    fn pipeline() -> Arc<Workflow> {
        let mut b = Workflow::builder("q");
        let a = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))), "img");
        let c = b.add_unary(Arc::new(Convolve::box_blur(1)), a);
        let _m = b.add_unary(Arc::new(GlobalAggregate::new(AggregateKind::Mean)), c);
        Arc::new(b.build().unwrap())
    }

    fn externals() -> HashMap<String, Array> {
        let mut m = HashMap::new();
        m.insert("img".to_string(), Array::filled(Shape::d2(6, 6), 1.0));
        m
    }

    fn run_pipeline(strategy: LineageStrategy) -> (Engine, Runtime, WorkflowRun) {
        let wf = pipeline();
        let mut rt = Runtime::in_memory();
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        (engine, rt, run)
    }

    #[test]
    fn backward_query_through_mapping_operators() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        // Trace one cell of the convolve output back through convolve and
        // scale: radius-1 neighbourhood, then identity.
        let q = LineageQuery::backward(vec![Coord::d2(3, 3)], vec![(1, 0), (0, 0)]);
        let result = exec.execute(&run, &q).unwrap();
        assert_eq!(result.cells.len(), 9);
        assert!(result.cells.contains(&Coord::d2(2, 2)));
        assert_eq!(result.report.steps.len(), 2);
        assert!(result
            .report
            .steps
            .iter()
            .all(|s| s.method == StepMethod::Mapping));
    }

    #[test]
    fn forward_query_through_mapping_operators() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        // A corner input pixel influences its 4-cell neighbourhood after the
        // convolve, and the single mean cell at the end.
        let q = LineageQuery::forward(vec![Coord::d2(0, 0)], vec![(0, 0), (1, 0), (2, 0)]);
        let result = exec.execute(&run, &q).unwrap();
        assert_eq!(result.cells.to_coords(), vec![Coord::d2(0, 0)]);
        assert_eq!(result.report.steps.len(), 3);
    }

    #[test]
    fn entire_array_optimization_short_circuits_all_to_all() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        // Backward from the global mean: its lineage is the whole convolve
        // output, so the step is answered by the entire-array optimization
        // and the remaining steps saturate.
        let q = LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(2, 0), (1, 0), (0, 0)]);
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        let result = exec.execute(&run, &q).unwrap();
        assert!(result.cells.is_full());
        // The first step (global mean) saturates via mapping or entire-array;
        // with a full intermediate the later all-to-all steps do not apply
        // (convolve is not all-to-all) but mapping still saturates them.
        assert_eq!(result.report.steps.len(), 3);

        // With the optimization disabled the answer is identical, just slower.
        let mut exec = QueryExecutor::new(&engine, &mut rt).with_options(QueryOptions {
            entire_array_optimization: false,
            query_time_optimizer: true,
        });
        let result2 = exec.execute(&run, &q).unwrap();
        assert!(result2.cells.is_full());
    }

    #[test]
    fn stored_lineage_answers_when_mapping_not_assigned() {
        // Store full lineage for the convolve operator and force its use by
        // assigning only a Full strategy.
        let mut strategy = LineageStrategy::new();
        strategy.set(1, vec![StorageStrategy::full_one()]);
        let (engine, mut rt, run) = run_pipeline(strategy);
        assert!(rt.has_lineage(run.run_id, 1));
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        let q = LineageQuery::backward(vec![Coord::d2(3, 3)], vec![(1, 0)]);
        let result = exec.execute(&run, &q).unwrap();
        assert_eq!(result.cells.len(), 9);
        assert_eq!(result.report.steps[0].method, StepMethod::Stored);
    }

    #[test]
    fn blackbox_step_reexecutes() {
        // No strategy and a non-mapping operator: force re-execution by
        // wrapping convolve in a black-box-only operator.
        use subzero_array::ArrayRef;
        use subzero_engine::{LineageSink, Operator};

        struct OpaqueBlur;
        impl Operator for OpaqueBlur {
            fn name(&self) -> &str {
                "opaque-blur"
            }
            fn output_shape(&self, s: &[Shape]) -> Shape {
                s[0]
            }
            fn supported_modes(&self) -> Vec<LineageMode> {
                vec![LineageMode::Full, LineageMode::Blackbox]
            }
            fn run(
                &self,
                inputs: &[ArrayRef],
                cur_modes: &[LineageMode],
                sink: &mut dyn LineageSink,
            ) -> Array {
                let input = &inputs[0];
                if cur_modes.contains(&LineageMode::Full) {
                    for (c, _) in input.iter() {
                        sink.lwrite(vec![c], vec![input.shape().neighborhood(&c, 1)]);
                    }
                }
                input.clone().map(|v| v)
            }
        }

        let mut b = Workflow::builder("bb");
        let _x = b.add_source(Arc::new(OpaqueBlur), "img");
        let wf = Arc::new(b.build().unwrap());
        let mut rt = Runtime::in_memory();
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();

        let mut exec = QueryExecutor::new(&engine, &mut rt);
        let q = LineageQuery::backward(vec![Coord::d2(2, 2)], vec![(0, 0)]);
        let result = exec.execute(&run, &q).unwrap();
        assert_eq!(result.cells.len(), 9);
        assert_eq!(result.report.steps[0].method, StepMethod::Reexecution);
        assert_eq!(result.report.reexecutions(), 1);
    }

    #[test]
    fn errors_for_bad_queries() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        assert!(matches!(
            exec.execute(&run, &LineageQuery::backward(vec![], vec![])),
            Err(QueryError::EmptyPath)
        ));
        assert!(matches!(
            exec.execute(
                &run,
                &LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(0, 7)])
            ),
            Err(QueryError::BadInputIndex { .. })
        ));
        assert!(matches!(
            exec.execute(
                &run,
                &LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(99, 0)])
            ),
            Err(QueryError::Engine(_))
        ));
    }

    #[test]
    fn path_mismatch_detected() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        // Backward from the mean (1x1) directly into the scale operator (6x6
        // output): shapes do not line up.
        let q = LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(2, 0), (0, 0)]);
        // Step 0 produces a 6x6 set (input of mean), and scale's output is
        // also 6x6, so that particular path happens to be consistent; use a
        // truly inconsistent one instead: forward into the mean from a 6x6
        // input, then forward again treating its 1x1 output as a 6x6 input.
        let _ = q;
        let q = LineageQuery::forward(vec![Coord::d2(0, 0)], vec![(2, 0), (1, 0)]);
        let err = exec.execute(&run, &q).unwrap_err();
        assert!(matches!(err, QueryError::PathMismatch { step: 1, .. }));
    }

    #[test]
    fn query_time_policy_estimates() {
        let policy = QueryTimePolicy::default();
        // Indexed lookups over a few cells are always preferred.
        assert!(policy.prefer_stored(true, 10, 100_000, Duration::from_millis(1)));
        // A full scan of a huge store versus a fast operator prefers re-execution.
        assert!(!policy.prefer_stored(false, 10, 10_000_000, Duration::from_micros(50)));
        // Estimates scale with entry counts.
        assert!(policy.stored_estimate(false, 10, 1000) > policy.stored_estimate(true, 10, 1000));
    }

    #[test]
    fn query_time_optimizer_switches_to_reexecution_on_mismatched_index() {
        // Store only forward-optimized lineage, then run a backward query.
        // With the query-time optimizer the step may fall back to
        // re-execution; without it the step must scan.
        let mut strategy = LineageStrategy::new();
        strategy.set(1, vec![StorageStrategy::full_one_forward()]);
        let (engine, mut rt, run) = run_pipeline(strategy.clone());
        let q = LineageQuery::backward(vec![Coord::d2(3, 3)], vec![(1, 0)]);

        let mut exec = QueryExecutor::new(&engine, &mut rt).with_options(QueryOptions {
            entire_array_optimization: true,
            query_time_optimizer: false,
        });
        let static_result = exec.execute(&run, &q).unwrap();
        assert_eq!(static_result.report.steps[0].method, StepMethod::Stored);
        assert!(static_result.report.any_scan());

        let (engine, mut rt, run) = run_pipeline(strategy);
        let mut exec = QueryExecutor::new(&engine, &mut rt).with_policy(QueryTimePolicy {
            // Make scans look expensive so the optimizer re-executes.
            entry_cost: Duration::from_millis(10),
            ..QueryTimePolicy::default()
        });
        let dynamic_result = exec.execute(&run, &q).unwrap();
        assert_eq!(
            dynamic_result.report.steps[0].method,
            StepMethod::Reexecution
        );
        // Both approaches agree on the answer.
        assert_eq!(static_result.cells, dynamic_result.cells);
    }
}
