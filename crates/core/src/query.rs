//! The lineage query executor.
//!
//! "The Query Executor iteratively executes each step in the lineage query
//! path by joining the lineage with the coordinates of the query cells, or
//! the intermediate cells generated from the previous step." (§VI-C)
//!
//! The entry point is a [`QuerySession`] borrowed from a
//! [`SubZero`](crate::system::SubZero) run.  A session pins one executed
//! workflow run, derives the operator traversal from the workflow DAG — the
//! caller names *arrays* (`session.backward(cells).from(op).to_source("img")`),
//! never `(operator, input index)` step vectors — and amortises work across
//! queries: traced re-execution pairs are cached per operator, and batched
//! queries ([`QuerySession::backward_many`]) share decoded scans, datastore
//! handles and R-tree lookups at every step.  At a DAG join the derived
//! traversal fans out over every path and unions the per-branch
//! intermediates, which is equivalent to running each path separately and
//! unioning the answers (each step distributes over unions of query cells).
//!
//! Each step is answered by one of:
//!
//! * the operator's **mapping functions** (free — nothing was stored),
//! * **materialised region lineage** from the operator's datastores
//!   (for composite lineage, combined with the default mapping function),
//! * **re-execution** of the operator in tracing mode (black-box lineage),
//! * the **entire-array optimization**: when every cell of the intermediate
//!   is set and the operator is annotated all-to-all, the step's answer is
//!   the entire input/output array without touching any lineage.
//!
//! The **query-time optimizer** (§VII-A) decides between materialised lineage
//! and re-execution using the statistics gathered at capture time, bounding
//! the worst case to roughly the cost of the black-box approach.
//!
//! The legacy [`LineageQuery`] + [`QueryExecutor`] surface — explicit
//! hand-assembled step vectors — remains as a thin shim over the same step
//! engine, for parity testing and for callers that need to pin one exact
//! path.  Hand-built paths are validated against the DAG: a path that skips
//! an operator or crosses the wrong input slot fails with
//! [`QueryError::InvalidPath`] naming the offending edge instead of
//! returning a silently-empty answer.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use subzero_array::{CellSet, Coord, Shape};
use subzero_engine::executor::{EngineError, WorkflowRun};
use subzero_engine::paths::{self, ArrayNode, Edge, PathError};
use subzero_engine::{Engine, InputSource, LineageMode, OpId, OperatorExt, RegionPair, Workflow};

use crate::datastore::LookupOutcome;
use crate::model::Direction;
use crate::reexec;
use crate::runtime::Runtime;

/// Errors produced while executing a lineage query.
#[derive(Debug)]
pub enum QueryError {
    /// The (legacy) query path was empty.
    EmptyPath,
    /// A session query was finished without naming its origin array.
    MissingOrigin,
    /// A path step referenced an input index the operator does not have.
    BadInputIndex {
        /// The operator.
        op: OpId,
        /// The requested input index.
        input_idx: usize,
    },
    /// A hand-assembled path is inconsistent with the workflow DAG: the
    /// named edge does not connect its step to the neighbouring step's
    /// operator (the path skips an operator, or crosses the wrong slot).
    InvalidPath {
        /// The offending step (0-based index into the path).
        step: usize,
        /// The operator whose input edge is crossed at that step.
        op: OpId,
        /// The input slot the path crosses.
        input_idx: usize,
        /// What the edge actually connects to.
        detail: String,
    },
    /// The traversal could not be derived from the workflow DAG.
    Path(PathError),
    /// A malformed session query (e.g. a backward query starting from an
    /// external array).
    Spec(String),
    /// An engine-level failure (missing run record, missing array version).
    Engine(EngineError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyPath => write!(f, "lineage query path is empty"),
            QueryError::MissingOrigin => write!(
                f,
                "query origin not set: call .from(op) / .from_source(name) before finishing"
            ),
            QueryError::BadInputIndex { op, input_idx } => {
                write!(f, "operator {op} has no input {input_idx}")
            }
            QueryError::InvalidPath {
                step,
                op,
                input_idx,
                detail,
            } => write!(
                f,
                "query path invalid at step {step} (operator {op}, input {input_idx}): {detail}"
            ),
            QueryError::Path(e) => write!(f, "cannot derive query path: {e}"),
            QueryError::Spec(s) => write!(f, "malformed query: {s}"),
            QueryError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<EngineError> for QueryError {
    fn from(e: EngineError) -> Self {
        QueryError::Engine(e)
    }
}

impl From<PathError> for QueryError {
    fn from(e: PathError) -> Self {
        QueryError::Path(e)
    }
}

/// A lineage query in the legacy format: a set of starting cells and a
/// hand-assembled path of `(operator, input index)` steps.
///
/// Superseded by [`QuerySession`], which derives the path from the workflow
/// DAG; this remains as a parity shim and for callers that must pin one
/// exact path (both run on the same step engine and return identical
/// answers along a given path).
#[derive(Clone, Debug, PartialEq)]
pub struct LineageQuery {
    /// The starting cells (output cells of the first path operator for a
    /// backward query; cells of its `input index`'th input for a forward
    /// query).
    pub cells: Vec<Coord>,
    /// The path of `(operator, input index)` steps, ordered from the query's
    /// starting operator toward its destination.
    pub path: Vec<(OpId, usize)>,
    /// Whether the path walks backward (toward inputs) or forward (toward
    /// outputs).
    pub direction: Direction,
}

impl LineageQuery {
    /// A backward query: trace `cells` (output cells of `path[0].0`) back
    /// through the path toward the workflow inputs.
    #[deprecated(
        note = "hand-assembled (OpId, slot) paths are superseded by QuerySession's \
                DAG-derived traversals; kept as a parity shim"
    )]
    pub fn backward(cells: Vec<Coord>, path: Vec<(OpId, usize)>) -> Self {
        LineageQuery {
            cells,
            path,
            direction: Direction::Backward,
        }
    }

    /// A forward query: trace `cells` (cells of input `path[0].1` of
    /// `path[0].0`) forward through the path toward the workflow outputs.
    #[deprecated(
        note = "hand-assembled (OpId, slot) paths are superseded by QuerySession's \
                DAG-derived traversals; kept as a parity shim"
    )]
    pub fn forward(cells: Vec<Coord>, path: Vec<(OpId, usize)>) -> Self {
        LineageQuery {
            cells,
            path,
            direction: Direction::Forward,
        }
    }
}

/// A declarative session query: direction, starting cells, and the two
/// endpoint *arrays* — no operator path.  The traversal between the
/// endpoints is derived from the workflow DAG when the spec runs
/// ([`QuerySession::query`]), fanning out over every path at DAG joins.
///
/// This is the storable/cloneable counterpart of the session builder calls,
/// used by benchmark harnesses and the optimizer's sample workloads.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    /// Traversal direction.
    pub direction: Direction,
    /// The starting cells, on the `from` array.
    pub cells: Vec<Coord>,
    /// The array the cells start on.
    pub from: ArrayNode,
    /// The array the answer lands on.
    pub to: ArrayNode,
}

impl QuerySpec {
    /// A backward query: trace output cells of operator `from` back to the
    /// array `to`.
    pub fn backward(cells: Vec<Coord>, from: OpId, to: ArrayNode) -> Self {
        QuerySpec {
            direction: Direction::Backward,
            cells,
            from: ArrayNode::Output(from),
            to,
        }
    }

    /// A backward query ending at the external array `source`.
    pub fn backward_to_source(cells: Vec<Coord>, from: OpId, source: impl Into<String>) -> Self {
        Self::backward(cells, from, ArrayNode::external(source))
    }

    /// A forward query: trace cells of the array `from` to the output of
    /// operator `to`.
    pub fn forward(cells: Vec<Coord>, from: ArrayNode, to: OpId) -> Self {
        QuerySpec {
            direction: Direction::Forward,
            cells,
            from,
            to: ArrayNode::Output(to),
        }
    }

    /// A forward query starting from the external array `source`.
    pub fn forward_from_source(cells: Vec<Coord>, source: impl Into<String>, to: OpId) -> Self {
        Self::forward(cells, ArrayNode::external(source), to)
    }
}

/// How one step of a query was answered.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StepMethod {
    /// Forward/backward mapping functions.
    Mapping,
    /// Materialised region lineage.
    Stored,
    /// Materialised lineage combined with the default mapping function
    /// (composite lineage).
    StoredPlusMapping,
    /// Operator re-execution in tracing mode (black-box lineage).
    Reexecution,
    /// The entire-array optimization short-circuited the step.
    EntireArray,
    /// The step's intermediate was empty, so nothing ran: the result is
    /// empty by construction (no lookup, mapping or re-execution happened).
    Skipped,
}

impl fmt::Display for StepMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StepMethod::Mapping => "mapping",
            StepMethod::Stored => "stored",
            StepMethod::StoredPlusMapping => "stored+mapping",
            StepMethod::Reexecution => "re-execution",
            StepMethod::EntireArray => "entire-array",
            StepMethod::Skipped => "skipped",
        };
        f.write_str(s)
    }
}

/// Per-step execution report.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// The operator traversed.
    pub op_id: OpId,
    /// The input index traversed.
    pub input_idx: usize,
    /// How the step was answered.
    pub method: StepMethod,
    /// Step wall-clock time.  For batched queries the shared step's total
    /// time is reported in every participating query's report (the work was
    /// done once for all of them).
    pub elapsed: Duration,
    /// Number of cells in the step's result.
    pub result_cells: usize,
    /// Whether a stored-lineage lookup had to scan the whole datastore
    /// because the index direction did not match.
    pub scanned: bool,
}

/// Whole-query execution report.
#[derive(Clone, Debug, Default)]
pub struct QueryReport {
    /// Reports for each step, in traversal order.
    pub steps: Vec<StepReport>,
    /// Total query wall-clock time.
    pub total_elapsed: Duration,
}

impl QueryReport {
    /// Number of steps answered by re-execution.
    pub fn reexecutions(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.method == StepMethod::Reexecution)
            .count()
    }

    /// Whether any step required a full datastore scan.
    pub fn any_scan(&self) -> bool {
        self.steps.iter().any(|s| s.scanned)
    }
}

/// The result of a lineage query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The cells of the destination array the query resolved to.
    pub cells: CellSet,
    /// Per-step diagnostics.
    pub report: QueryReport,
}

/// Tuning knobs of the query executor.
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Enable the entire-array optimization (§VI-C).
    pub entire_array_optimization: bool,
    /// Enable the query-time optimizer (§VII-A): fall back to re-execution
    /// when the materialised lineage is predicted (or observed) to be slower.
    pub query_time_optimizer: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            entire_array_optimization: true,
            query_time_optimizer: true,
        }
    }
}

/// The query-time optimizer's cost thresholds.
///
/// The estimates are deliberately coarse — a per-entry fetch cost and a
/// per-cell mapping cost — because all the decision needs is the order of
/// magnitude: indexed lookups touching a handful of entries versus a full
/// scan of a datastore versus re-running the operator.
#[derive(Clone, Copy, Debug)]
pub struct QueryTimePolicy {
    /// Estimated cost of fetching and decoding one hash entry.
    pub entry_cost: Duration,
    /// Estimated cost of applying a mapping function to one cell.
    pub map_cost: Duration,
    /// Stored-lineage access is abandoned in favour of re-execution when its
    /// estimate exceeds this multiple of the re-execution estimate (the paper
    /// bounds the worst case to 2× the black-box approach).
    pub reexec_multiple: f64,
}

impl Default for QueryTimePolicy {
    fn default() -> Self {
        QueryTimePolicy {
            entry_cost: Duration::from_micros(3),
            map_cost: Duration::from_nanos(300),
            reexec_multiple: 2.0,
        }
    }
}

impl QueryTimePolicy {
    /// Estimates the cost of answering a step from stored lineage.
    pub fn stored_estimate(
        &self,
        serving: bool,
        query_cells: usize,
        total_entries: usize,
    ) -> Duration {
        let entries = if serving {
            query_cells.min(total_entries.max(1))
        } else {
            total_entries
        };
        self.entry_cost * entries.max(1) as u32
    }

    /// Whether stored lineage should be used instead of re-execution.
    pub fn prefer_stored(
        &self,
        serving: bool,
        query_cells: usize,
        total_entries: usize,
        reexec_estimate: Duration,
    ) -> bool {
        let stored = self.stored_estimate(serving, query_cells, total_entries);
        stored.as_secs_f64() <= reexec_estimate.as_secs_f64() * self.reexec_multiple
    }
}

// ---------------------------------------------------------------------------
// The step engine: one traversal step for a batch of query intermediates.
// ---------------------------------------------------------------------------

/// Per-array, per-query intermediates of one traversal (one [`CellSet`]
/// per query of the batch, keyed by the array it lives on).
type Frontier = HashMap<ArrayNode, Vec<CellSet>>;

/// How one query of a step batch will be answered.
#[derive(Copy, Clone, PartialEq, Eq)]
enum StepChoice {
    /// Empty intermediate: the answer is empty without touching anything.
    Empty,
    EntireArray,
    Mapping,
    Stored,
    Reexec,
}

/// Hit/miss counters of one [`QueryCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Traversal plans served from the cache.
    pub plan_hits: u64,
    /// Traversal plans derived fresh (and cached).
    pub plan_misses: u64,
    /// Re-execution traces served from the cache.
    pub trace_hits: u64,
    /// Operators re-executed in tracing mode (and cached).
    pub trace_misses: u64,
}

/// Cross-session cache of derived query artifacts.
///
/// A [`QuerySession`] borrows the engine and runtime, so it cannot outlive
/// one query burst; the expensive artifacts it derives can.  This cache owns
/// them, keyed by the workflow's [DAG hash](Workflow::dag_hash):
///
/// * **traversal plans** — the DAG-derived edge list between two arrays,
///   keyed by `(dag hash, direction, from, to)`.  Plans depend only on the
///   workflow wiring, so they are shared across sessions *and* across runs
///   of equal workflow specifications.
/// * **re-execution traces** — the region pairs traced by re-running an
///   operator in tracing mode (the black-box path), keyed by
///   `(dag hash, run id, operator)`.  Traces read the run's recorded arrays,
///   so they are per-run; caching them here means one traced re-execution
///   per `(run, operator)` across every session over that run.
///
/// [`SubZero`](crate::system::SubZero) owns one and threads it through every
/// [`session`](crate::system::SubZero::session); clearing a run's lineage
/// evicts that run's traces.  Sessions built directly from an engine +
/// runtime pair use a private cache unless one is attached with
/// [`QuerySession::with_cache`].
#[derive(Default)]
pub struct QueryCache {
    plans: HashMap<(u64, Direction, ArrayNode, ArrayNode), Arc<Vec<Edge>>>,
    traces: HashMap<(u64, u64, OpId), Arc<Vec<RegionPair>>>,
    stats: QueryCacheStats,
}

impl QueryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters since creation (or the last [`clear`](Self::clear)).
    pub fn stats(&self) -> QueryCacheStats {
        self.stats
    }

    /// Number of cached traversal plans.
    pub fn plans_cached(&self) -> usize {
        self.plans.len()
    }

    /// Number of cached re-execution traces.
    pub fn traces_cached(&self) -> usize {
        self.traces.len()
    }

    /// Drops every cached artifact and resets the counters.
    pub fn clear(&mut self) {
        self.plans.clear();
        self.traces.clear();
        self.stats = QueryCacheStats::default();
    }

    /// Drops the re-execution traces of one run.  Plans are run-independent
    /// and stay.  Called when a run's lineage is cleared, so a later run
    /// reusing the id cannot see stale traces.
    pub fn evict_run(&mut self, run_id: u64) {
        self.traces.retain(|&(_, rid, _), _| rid != run_id);
    }

    /// The plan under `key`, deriving and caching it on first use.
    /// Derivation errors are returned and not cached.
    fn plan(
        &mut self,
        key: (u64, Direction, ArrayNode, ArrayNode),
        derive: impl FnOnce() -> Result<Vec<Edge>, QueryError>,
    ) -> Result<Arc<Vec<Edge>>, QueryError> {
        if let Some(plan) = self.plans.get(&key) {
            self.stats.plan_hits += 1;
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(derive()?);
        self.stats.plan_misses += 1;
        self.plans.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// The trace under `key`, tracing and caching it on first use.
    /// Trace errors are returned and not cached.
    fn trace(
        &mut self,
        key: (u64, u64, OpId),
        derive: impl FnOnce() -> Result<Vec<RegionPair>, QueryError>,
    ) -> Result<Arc<Vec<RegionPair>>, QueryError> {
        if let Some(pairs) = self.traces.get(&key) {
            self.stats.trace_hits += 1;
            return Ok(Arc::clone(pairs));
        }
        let pairs = Arc::new(derive()?);
        self.stats.trace_misses += 1;
        self.traces.insert(key, Arc::clone(&pairs));
        Ok(pairs)
    }
}

/// The cache a [`StepEngine`] works against: borrowed from the system façade
/// (cross-session) or owned (session-private fallback).
enum CacheHandle<'a> {
    Owned(QueryCache),
    Shared(&'a mut QueryCache),
}

impl CacheHandle<'_> {
    fn get_mut(&mut self) -> &mut QueryCache {
        match self {
            CacheHandle::Owned(cache) => cache,
            CacheHandle::Shared(cache) => cache,
        }
    }
}

/// Executes single traversal steps for batches of query intermediates,
/// sharing the heavy artifacts across the batch: one traced re-execution per
/// operator (cached in the [`QueryCache`], across sessions when the cache is
/// shared), one datastore lookup batch — and therefore at most one
/// mismatched-direction scan — per step.
struct StepEngine<'a> {
    engine: &'a Engine,
    runtime: &'a mut Runtime,
    options: QueryOptions,
    policy: QueryTimePolicy,
    /// Plans + traced re-execution pairs, shared across sessions when the
    /// session was built by the system façade.
    cache: CacheHandle<'a>,
}

impl<'a> StepEngine<'a> {
    fn new(engine: &'a Engine, runtime: &'a mut Runtime) -> Self {
        StepEngine {
            engine,
            runtime,
            options: QueryOptions::default(),
            policy: QueryTimePolicy::default(),
            cache: CacheHandle::Owned(QueryCache::new()),
        }
    }

    /// Executes one `(operator, input index)` step for every intermediate in
    /// `currents`, returning the per-query results and reports.
    fn step_many(
        &mut self,
        run: &WorkflowRun,
        op_id: OpId,
        input_idx: usize,
        direction: Direction,
        currents: &[CellSet],
    ) -> Result<Vec<(CellSet, StepReport)>, QueryError> {
        let step_start = Instant::now();
        let record = run.record(op_id)?;
        let meta = &record.meta;
        if input_idx >= meta.input_shapes.len() {
            return Err(QueryError::BadInputIndex {
                op: op_id,
                input_idx,
            });
        }
        let node = run.workflow.node(op_id).map_err(EngineError::Workflow)?;
        let op = node.operator.as_ref();
        let backward = direction == Direction::Backward;
        let target_shape = match direction {
            Direction::Backward => meta.input_shapes[input_idx],
            Direction::Forward => meta.output_shape,
        };

        // --- Choose the step method per query -----------------------------
        let strategies = self.runtime.strategies_for(op_id);
        let has_stored = self.runtime.has_lineage(run.run_id, op_id);
        let explicit_map = strategies.iter().any(|s| s.mode == LineageMode::Map);
        // An explicit all-Blackbox assignment means "re-run this operator at
        // query time even if it has mapping functions" — that is what the
        // paper's BlackBox baseline does for every operator.
        let forced_blackbox =
            !strategies.is_empty() && strategies.iter().all(|s| s.mode == LineageMode::Blackbox);
        let use_mapping_only = if forced_blackbox {
            false
        } else if has_stored {
            explicit_map
        } else {
            // No materialised lineage: a mapping operator answers from its
            // mapping functions; anything else re-executes.
            op.is_mapping()
        };
        let (serving, total_entries) = if has_stored {
            let serving = strategies
                .iter()
                .any(|s| s.stores_pairs() && s.serves(direction));
            let total_entries: usize = self
                .runtime
                .datastores(run.run_id, op_id)
                .iter()
                .map(|d| d.num_entries())
                .max()
                .unwrap_or(0);
            (serving, total_entries)
        } else {
            (false, 0)
        };

        let choices: Vec<StepChoice> = currents
            .iter()
            .map(|current| {
                // Entire-array optimization, two cases (§VI-C): (a) the
                // operator is all-to-all, so any non-empty intermediate
                // spans the whole target array; (b) the intermediate already
                // covers its whole array and the operator is annotated as
                // safe to span across in this direction.
                let entire = self.options.entire_array_optimization
                    && ((op.all_to_all() && !current.is_empty())
                        || (current.is_full() && op.spans_entire_array(input_idx, backward)));
                if entire {
                    StepChoice::EntireArray
                } else if current.is_empty() {
                    StepChoice::Empty
                } else if forced_blackbox {
                    StepChoice::Reexec
                } else if use_mapping_only {
                    StepChoice::Mapping
                } else if has_stored {
                    let use_stored = !self.options.query_time_optimizer
                        || self.policy.prefer_stored(
                            serving,
                            current.len(),
                            total_entries,
                            record.elapsed,
                        );
                    if use_stored {
                        StepChoice::Stored
                    } else {
                        StepChoice::Reexec
                    }
                } else {
                    StepChoice::Reexec
                }
            })
            .collect();

        // --- Stored lookups: one batched call for the whole group ---------
        let stored_idx: Vec<usize> = (0..currents.len())
            .filter(|&i| choices[i] == StepChoice::Stored)
            .collect();
        let mut stored_outcomes: HashMap<usize, LookupOutcome> = HashMap::new();
        if !stored_idx.is_empty() {
            let group: Vec<&CellSet> = stored_idx.iter().map(|&i| &currents[i]).collect();
            // Prefer a datastore whose index direction matches the query;
            // fall back to any available one (which will scan).
            let stores = self.runtime.datastores(run.run_id, op_id);
            let pick = stores
                .iter()
                .position(|d| d.strategy().serves(direction))
                .or(if stores.is_empty() { None } else { Some(0) });
            let outcomes = match pick {
                Some(idx) => match direction {
                    Direction::Backward => {
                        stores[idx].lookup_backward_many(&group, input_idx, op, meta)
                    }
                    Direction::Forward => {
                        stores[idx].lookup_forward_many(&group, input_idx, op, meta)
                    }
                },
                None => group
                    .iter()
                    .map(|_| LookupOutcome {
                        result: CellSet::empty(target_shape),
                        covered: CellSet::empty(currents[stored_idx[0]].shape()),
                        entries_fetched: 0,
                        scanned: false,
                    })
                    .collect(),
            };
            for (&i, outcome) in stored_idx.iter().zip(outcomes) {
                stored_outcomes.insert(i, outcome);
            }
        }

        // --- Re-execution: trace the operator once ever per (run, op) -----
        let reexec_pairs: Option<Arc<Vec<RegionPair>>> = if choices.contains(&StepChoice::Reexec) {
            let engine = self.engine;
            let key = (run.workflow.dag_hash(), run.run_id, op_id);
            Some(self.cache.get_mut().trace(key, || {
                let (pairs, _elapsed) = engine.rerun_tracing(run, op_id)?;
                Ok(pairs)
            })?)
        } else {
            None
        };

        // --- Assemble per-query results ------------------------------------
        let is_composite = strategies.iter().any(|s| s.mode == LineageMode::Comp);
        let mut out = Vec::with_capacity(currents.len());
        for (i, current) in currents.iter().enumerate() {
            let (mut result, mut method, mut scanned) =
                (CellSet::empty(target_shape), StepMethod::Mapping, false);
            match choices[i] {
                StepChoice::Empty => {
                    // Nothing ran for this query; say so instead of
                    // misattributing the step to a method that never
                    // executed (reexecutions()/any_scan() stay truthful).
                    method = StepMethod::Skipped;
                }
                StepChoice::EntireArray => {
                    result = CellSet::full(target_shape);
                    method = StepMethod::EntireArray;
                }
                StepChoice::Mapping => {
                    result = apply_mapping(op, meta, current, input_idx, direction);
                }
                StepChoice::Reexec => {
                    let pairs = reexec_pairs.as_deref().expect("trace for reexec step");
                    result = match direction {
                        Direction::Backward => {
                            reexec::backward_from_pairs(pairs, current, input_idx, op, meta)
                        }
                        Direction::Forward => {
                            reexec::forward_from_pairs(pairs, current, input_idx, op, meta)
                        }
                    };
                    method = StepMethod::Reexecution;
                }
                StepChoice::Stored => {
                    let outcome = stored_outcomes.remove(&i).expect("grouped outcome");
                    scanned = outcome.scanned;
                    result = outcome.result;
                    method = StepMethod::Stored;
                    // Composite lineage: the stored pairs only cover the
                    // exceptional cells; the rest follow the default mapping.
                    if is_composite {
                        let default = match direction {
                            Direction::Backward => {
                                let uncovered: Vec<Coord> = current
                                    .iter()
                                    .filter(|c| !outcome.covered.contains(c))
                                    .collect();
                                let uncovered_set =
                                    CellSet::from_coords(current.shape(), uncovered);
                                apply_mapping(op, meta, &uncovered_set, input_idx, direction)
                            }
                            Direction::Forward => {
                                // Every query cell keeps its default forward
                                // relationship in addition to any stored
                                // overrides.
                                apply_mapping(op, meta, current, input_idx, direction)
                            }
                        };
                        result.union_with(&default);
                        method = StepMethod::StoredPlusMapping;
                    }
                }
            }
            out.push((
                result,
                StepReport {
                    op_id,
                    input_idx,
                    method,
                    elapsed: step_start.elapsed(),
                    result_cells: 0, // patched below (needs the moved set)
                    scanned,
                },
            ));
        }
        for (cells, report) in &mut out {
            report.result_cells = cells.len();
        }
        Ok(out)
    }
}

fn apply_mapping(
    op: &dyn subzero_engine::Operator,
    meta: &subzero_engine::OpMeta,
    current: &CellSet,
    input_idx: usize,
    direction: Direction,
) -> CellSet {
    let target_shape = match direction {
        Direction::Backward => meta.input_shapes[input_idx],
        Direction::Forward => meta.output_shape,
    };
    let mut result = CellSet::empty(target_shape);
    for cell in current.iter() {
        let mapped = match direction {
            Direction::Backward => op.map_backward(&cell, input_idx, meta),
            Direction::Forward => op.map_forward(&cell, input_idx, meta),
        };
        for c in mapped.unwrap_or_default() {
            if target_shape.contains(&c) {
                result.insert(&c);
            }
        }
        // Saturated intermediates cannot grow further; stop early.
        if result.is_full() {
            break;
        }
    }
    result
}

/// The [`ArrayNode`] an operator input edge reads from.
fn array_node_of(src: &InputSource) -> ArrayNode {
    match src {
        InputSource::Operator(op) => ArrayNode::Output(*op),
        InputSource::External(name) => ArrayNode::External(name.clone()),
    }
}

// ---------------------------------------------------------------------------
// QuerySession: DAG-derived traversals, batching, cursors.
// ---------------------------------------------------------------------------

/// A query session pinned to one executed workflow run.
///
/// Borrow one from [`SubZero::session`](crate::system::SubZero::session) (or
/// construct it from an [`Engine`] + [`Runtime`] pair) and issue queries by
/// naming arrays:
///
/// * `session.backward(cells).from(op).to_source("img")` — trace output
///   cells of `op` back to the external array `img`, through every DAG path
///   between them.
/// * `session.backward(cells).from(op).to(other_op)` — stop at another
///   operator's output array.
/// * `session.backward(cells).from(op).to_sources()` — full-workflow trace:
///   one answer per reachable external array, computed in a single traversal.
/// * `session.backward_many(batches).from(op).to_source("img")` — a batch of
///   queries answered in one pass: every step shares datastore handles,
///   decoded entries and (for mismatched-direction stores) the single full
///   scan across the whole batch.
/// * `session.forward(cells).from_source("img").to(op)` — forward queries,
///   with the same `_many` batching.
/// * `...cursor_to_source("img")` — a [`LineageCursor`] streaming per-step
///   results instead of only the final answer.
///
/// Work is amortised across the queries of one session: traced re-execution
/// pairs are computed once per operator and reused by every later query.
pub struct QuerySession<'a> {
    steps: StepEngine<'a>,
    run: &'a WorkflowRun,
}

impl<'a> QuerySession<'a> {
    /// Creates a session over one executed run.
    pub fn new(engine: &'a Engine, runtime: &'a mut Runtime, run: &'a WorkflowRun) -> Self {
        QuerySession {
            steps: StepEngine::new(engine, runtime),
            run,
        }
    }

    /// Overrides the executor options.
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.steps.options = options;
        self
    }

    /// Overrides the query-time policy.
    pub fn with_policy(mut self, policy: QueryTimePolicy) -> Self {
        self.steps.policy = policy;
        self
    }

    /// Threads a cross-session [`QueryCache`] through this session: plans
    /// and re-execution traces are served from (and derived into) `cache`
    /// instead of a session-private one.  The system façade does this with
    /// the cache it owns, so the artifacts survive the session borrow.
    pub fn with_cache(mut self, cache: &'a mut QueryCache) -> Self {
        self.steps.cache = CacheHandle::Shared(cache);
        self
    }

    /// Replaces the executor options for subsequent queries.
    pub fn set_options(&mut self, options: QueryOptions) {
        self.steps.options = options;
    }

    /// Replaces the query-time policy for subsequent queries.
    pub fn set_policy(&mut self, policy: QueryTimePolicy) {
        self.steps.policy = policy;
    }

    /// The run this session queries.
    pub fn run(&self) -> &WorkflowRun {
        self.run
    }

    /// Starts a backward query over one set of cells.
    pub fn backward(&mut self, cells: Vec<Coord>) -> BackwardQuery<'_, 'a> {
        BackwardQuery(BackwardBatch {
            session: self,
            batches: vec![cells],
            from: None,
        })
    }

    /// Starts a batch of backward queries, answered in one shared pass.
    ///
    /// The batch shares decoded entries, datastore handles and (on a
    /// mismatched index direction) one streamed full scan; results come
    /// back in query order.
    ///
    /// ```
    /// use std::collections::HashMap;
    /// use std::sync::Arc;
    /// use subzero::prelude::*;
    /// use subzero_engine::ops::{Elementwise1, UnaryKind};
    ///
    /// let mut b = Workflow::builder("backward-many-doc");
    /// let scale = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))), "img");
    /// let wf = Arc::new(b.build().unwrap());
    ///
    /// let mut subzero = SubZero::new();
    /// let mut inputs = HashMap::new();
    /// inputs.insert("img".to_string(), Array::from_rows(&[vec![1.0, 3.0]]));
    /// let run = subzero.execute(&wf, &inputs).unwrap();
    ///
    /// // Two backward queries answered in one shared pass.
    /// let mut session = subzero.session(&run);
    /// let results = session
    ///     .backward_many(vec![vec![Coord::d2(0, 0)], vec![Coord::d2(0, 1)]])
    ///     .from(scale)
    ///     .to_source("img")
    ///     .unwrap();
    /// assert_eq!(results.len(), 2);
    /// assert_eq!(results[0].cells.to_coords(), vec![Coord::d2(0, 0)]);
    /// assert_eq!(results[1].cells.to_coords(), vec![Coord::d2(0, 1)]);
    /// ```
    pub fn backward_many(&mut self, batches: Vec<Vec<Coord>>) -> BackwardBatch<'_, 'a> {
        BackwardBatch {
            session: self,
            batches,
            from: None,
        }
    }

    /// Starts a forward query over one set of cells.
    pub fn forward(&mut self, cells: Vec<Coord>) -> ForwardQuery<'_, 'a> {
        ForwardQuery(ForwardBatch {
            session: self,
            batches: vec![cells],
            from: None,
        })
    }

    /// Starts a batch of forward queries, answered in one shared pass.
    pub fn forward_many(&mut self, batches: Vec<Vec<Coord>>) -> ForwardBatch<'_, 'a> {
        ForwardBatch {
            session: self,
            batches,
            from: None,
        }
    }

    /// Runs one declarative [`QuerySpec`].
    pub fn query(&mut self, spec: &QuerySpec) -> Result<QueryResult, QueryError> {
        self.query_many(spec, std::slice::from_ref(&spec.cells))
            .map(|mut v| v.pop().expect("one result per batch"))
    }

    /// Runs one [`QuerySpec`] shape over several cell batches (the spec's
    /// own `cells` are ignored), sharing every step across the batch.
    pub fn query_many(
        &mut self,
        spec: &QuerySpec,
        batches: &[Vec<Coord>],
    ) -> Result<Vec<QueryResult>, QueryError> {
        let edges = self.plan_for(spec.direction, &spec.from, &spec.to)?;
        let (mut frontier, reports) =
            self.run_edges(spec.direction, &edges, &spec.from, batches)?;
        self.collect_results(&mut frontier, &spec.to, reports, batches.len())
    }

    /// The derived traversal edges between two arrays, in execution order —
    /// served from the [`QueryCache`] when an equal workflow specification
    /// already derived this plan (in this session or any earlier one sharing
    /// the cache).
    fn plan_for(
        &mut self,
        direction: Direction,
        from: &ArrayNode,
        to: &ArrayNode,
    ) -> Result<Arc<Vec<Edge>>, QueryError> {
        let wf: &Workflow = &self.run.workflow;
        let key = (wf.dag_hash(), direction, from.clone(), to.clone());
        self.steps.cache.get_mut().plan(key, || match direction {
            Direction::Backward => {
                let ArrayNode::Output(op) = from else {
                    return Err(QueryError::Spec(
                        "backward queries start from an operator's output array".into(),
                    ));
                };
                Ok(paths::backward_plan(wf, *op, to)?.edges)
            }
            Direction::Forward => {
                let ArrayNode::Output(op) = to else {
                    return Err(QueryError::Spec(
                        "forward queries end at an operator's output array".into(),
                    ));
                };
                Ok(paths::forward_plan(wf, from, *op)?.edges)
            }
        })
    }

    /// The shape of an array of this run.
    fn array_shape(&self, node: &ArrayNode) -> Result<Shape, QueryError> {
        match node {
            ArrayNode::Output(op) => Ok(self.run.record(*op)?.meta.output_shape),
            ArrayNode::External(name) => {
                for n in self.run.workflow.nodes() {
                    for (idx, src) in n.inputs.iter().enumerate() {
                        if matches!(src, InputSource::External(x) if x == name) {
                            return Ok(self.run.record(n.id)?.meta.input_shapes[idx]);
                        }
                    }
                }
                Err(QueryError::Path(PathError::UnknownSource(name.clone())))
            }
        }
    }

    /// Executes a derived edge list over per-query frontiers.  Returns the
    /// final frontier (per array, one [`CellSet`] per query) and the
    /// per-query reports.
    fn run_edges(
        &mut self,
        direction: Direction,
        edges: &[Edge],
        from: &ArrayNode,
        batches: &[Vec<Coord>],
    ) -> Result<(Frontier, Vec<QueryReport>), QueryError> {
        let start = Instant::now();
        let from_shape = self.array_shape(from)?;
        let mut frontier = Frontier::new();
        frontier.insert(
            from.clone(),
            batches
                .iter()
                .map(|cells| CellSet::from_coords(from_shape, cells.iter().copied()))
                .collect(),
        );
        let mut reports = vec![QueryReport::default(); batches.len()];
        for &(op, idx) in edges {
            self.run_edge(direction, op, idx, &mut frontier, &mut reports)?;
        }
        for r in &mut reports {
            r.total_elapsed = start.elapsed();
        }
        Ok((frontier, reports))
    }

    /// Executes one edge of a traversal: reads the per-query intermediates
    /// on the edge's input array, crosses the operator, and unions the
    /// results into the edge's target array.  Returns the step's per-query
    /// results, or `None` when every intermediate was empty and the step was
    /// skipped.
    #[allow(clippy::type_complexity)]
    fn run_edge(
        &mut self,
        direction: Direction,
        op_id: OpId,
        input_idx: usize,
        frontier: &mut Frontier,
        reports: &mut [QueryReport],
    ) -> Result<Option<Vec<(CellSet, StepReport)>>, QueryError> {
        let nq = reports.len();
        let node = self
            .run
            .workflow
            .node(op_id)
            .map_err(EngineError::Workflow)?;
        let Some(src) = node.inputs.get(input_idx) else {
            return Err(QueryError::BadInputIndex {
                op: op_id,
                input_idx,
            });
        };
        let side_array = array_node_of(src);
        let (input_node, target_node) = match direction {
            Direction::Backward => (ArrayNode::Output(op_id), side_array),
            Direction::Forward => (side_array, ArrayNode::Output(op_id)),
        };
        let target_shape = self.array_shape(&target_node)?;
        let ensure_target = |frontier: &mut Frontier| {
            frontier
                .entry(target_node.clone())
                .or_insert_with(|| vec![CellSet::empty(target_shape); nq]);
        };
        // The frontier borrow ends once step_many returns (the step engine
        // never touches the frontier), so no per-edge clone is needed.
        let Some(inputs) = frontier.get(&input_node) else {
            // Nothing ever flowed into this edge's input array (possible for
            // merged multi-destination traversals); its contribution is empty.
            ensure_target(frontier);
            return Ok(None);
        };
        if inputs.iter().all(CellSet::is_empty) {
            ensure_target(frontier);
            return Ok(None);
        }
        let results = self
            .steps
            .step_many(self.run, op_id, input_idx, direction, inputs)?;
        ensure_target(frontier);
        let entry = frontier.get_mut(&target_node).expect("just ensured");
        for ((acc, (cells, report)), query_report) in
            entry.iter_mut().zip(&results).zip(reports.iter_mut())
        {
            acc.union_with(cells);
            query_report.steps.push(report.clone());
        }
        Ok(Some(results))
    }

    /// Extracts per-query results for one destination array.
    fn collect_results(
        &self,
        frontier: &mut Frontier,
        to: &ArrayNode,
        reports: Vec<QueryReport>,
        nq: usize,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let shape = self.array_shape(to)?;
        let cells = frontier
            .remove(to)
            .unwrap_or_else(|| vec![CellSet::empty(shape); nq]);
        Ok(cells
            .into_iter()
            .zip(reports)
            .map(|(cells, report)| QueryResult { cells, report })
            .collect())
    }

    /// Merged edges of several backward plans, in one valid execution order.
    fn merge_backward_edges(&self, plans: &[(String, paths::TracePlan)]) -> Vec<Edge> {
        let wanted: HashSet<Edge> = plans
            .iter()
            .flat_map(|(_, p)| p.edges.iter().copied())
            .collect();
        let wf: &Workflow = &self.run.workflow;
        let mut edges = Vec::with_capacity(wanted.len());
        for &op in wf.topo_order().iter().rev() {
            let Ok(node) = wf.node(op) else { continue };
            for idx in 0..node.inputs.len() {
                if wanted.contains(&(op, idx)) {
                    edges.push((op, idx));
                }
            }
        }
        edges
    }
}

impl fmt::Debug for QuerySession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuerySession")
            .field("run_id", &self.run.run_id)
            .finish()
    }
}

/// Builder for a batch of backward queries (see [`QuerySession`]).
pub struct BackwardBatch<'s, 'a> {
    session: &'s mut QuerySession<'a>,
    batches: Vec<Vec<Coord>>,
    from: Option<OpId>,
}

impl<'s, 'a> BackwardBatch<'s, 'a> {
    /// Names the operator whose output array the query cells live on.
    pub fn from(mut self, op: OpId) -> Self {
        self.from = Some(op);
        self
    }

    fn origin(&self) -> Result<ArrayNode, QueryError> {
        self.from
            .map(ArrayNode::Output)
            .ok_or(QueryError::MissingOrigin)
    }

    fn run_to(self, to: ArrayNode) -> Result<Vec<QueryResult>, QueryError> {
        let from = self.origin()?;
        let spec = QuerySpec {
            direction: Direction::Backward,
            cells: Vec::new(),
            from,
            to,
        };
        self.session.query_many(&spec, &self.batches)
    }

    /// Traces every query of the batch back to the output array of `op`.
    pub fn to(self, op: OpId) -> Result<Vec<QueryResult>, QueryError> {
        self.run_to(ArrayNode::Output(op))
    }

    /// Traces every query of the batch back to the external array `source`.
    pub fn to_source(self, source: impl Into<String>) -> Result<Vec<QueryResult>, QueryError> {
        self.run_to(ArrayNode::external(source))
    }
}

/// Builder for one backward query (see [`QuerySession`]).
pub struct BackwardQuery<'s, 'a>(BackwardBatch<'s, 'a>);

impl<'s, 'a> BackwardQuery<'s, 'a> {
    /// Names the operator whose output array the query cells live on.
    pub fn from(self, op: OpId) -> Self {
        BackwardQuery(self.0.from(op))
    }

    /// Traces the cells back to the output array of `op`.
    pub fn to(self, op: OpId) -> Result<QueryResult, QueryError> {
        Ok(self.0.to(op)?.pop().expect("one result"))
    }

    /// Traces the cells back to the external array `source`.
    pub fn to_source(self, source: impl Into<String>) -> Result<QueryResult, QueryError> {
        Ok(self.0.to_source(source)?.pop().expect("one result"))
    }

    /// Full-workflow trace: one answer per external array reachable from the
    /// origin, computed in a *single* traversal of the merged sub-DAG (a
    /// shared prefix step runs once, not once per source).
    pub fn to_sources(self) -> Result<Vec<(String, QueryResult)>, QueryError> {
        let from_op = self.0.from.ok_or(QueryError::MissingOrigin)?;
        let session = self.0.session;
        let plans = paths::backward_source_plans(&session.run.workflow, from_op)?;
        if plans.is_empty() {
            return Ok(Vec::new());
        }
        let edges = session.merge_backward_edges(&plans);
        let from = ArrayNode::Output(from_op);
        let (mut frontier, reports) =
            session.run_edges(Direction::Backward, &edges, &from, &self.0.batches)?;
        let mut out = Vec::with_capacity(plans.len());
        for (name, _plan) in plans {
            let to = ArrayNode::external(name.clone());
            let results = session.collect_results(&mut frontier, &to, reports.clone(), 1)?;
            let result = results.into_iter().next().expect("one result");
            out.push((name, result));
        }
        Ok(out)
    }

    /// A [`LineageCursor`] streaming per-step results toward the output
    /// array of `op`.
    pub fn cursor_to(self, op: OpId) -> Result<LineageCursor<'s, 'a>, QueryError> {
        self.cursor(ArrayNode::Output(op))
    }

    /// A [`LineageCursor`] streaming per-step results toward the external
    /// array `source`.
    pub fn cursor_to_source(
        self,
        source: impl Into<String>,
    ) -> Result<LineageCursor<'s, 'a>, QueryError> {
        self.cursor(ArrayNode::external(source))
    }

    fn cursor(self, to: ArrayNode) -> Result<LineageCursor<'s, 'a>, QueryError> {
        let from = self.0.origin()?;
        LineageCursor::new(
            self.0.session,
            Direction::Backward,
            from,
            to,
            self.0.batches,
        )
    }
}

/// Builder for a batch of forward queries (see [`QuerySession`]).
pub struct ForwardBatch<'s, 'a> {
    session: &'s mut QuerySession<'a>,
    batches: Vec<Vec<Coord>>,
    from: Option<ArrayNode>,
}

impl<'s, 'a> ForwardBatch<'s, 'a> {
    /// Names the operator whose *output* array the query cells live on.
    pub fn from(mut self, op: OpId) -> Self {
        self.from = Some(ArrayNode::Output(op));
        self
    }

    /// Names the external array the query cells live on.
    pub fn from_source(mut self, source: impl Into<String>) -> Self {
        self.from = Some(ArrayNode::external(source));
        self
    }

    /// Traces every query of the batch forward to the output array of `op`.
    pub fn to(self, op: OpId) -> Result<Vec<QueryResult>, QueryError> {
        let from = self.from.ok_or(QueryError::MissingOrigin)?;
        let spec = QuerySpec {
            direction: Direction::Forward,
            cells: Vec::new(),
            from,
            to: ArrayNode::Output(op),
        };
        self.session.query_many(&spec, &self.batches)
    }
}

/// Builder for one forward query (see [`QuerySession`]).
pub struct ForwardQuery<'s, 'a>(ForwardBatch<'s, 'a>);

impl<'s, 'a> ForwardQuery<'s, 'a> {
    /// Names the operator whose *output* array the query cells live on.
    pub fn from(self, op: OpId) -> Self {
        ForwardQuery(self.0.from(op))
    }

    /// Names the external array the query cells live on.
    pub fn from_source(self, source: impl Into<String>) -> Self {
        ForwardQuery(self.0.from_source(source))
    }

    /// Traces the cells forward to the output array of `op`.
    pub fn to(self, op: OpId) -> Result<QueryResult, QueryError> {
        Ok(self.0.to(op)?.pop().expect("one result"))
    }

    /// A [`LineageCursor`] streaming per-step results toward the output
    /// array of `op`.
    pub fn cursor_to(self, op: OpId) -> Result<LineageCursor<'s, 'a>, QueryError> {
        let from = self.0.from.clone().ok_or(QueryError::MissingOrigin)?;
        LineageCursor::new(
            self.0.session,
            Direction::Forward,
            from,
            ArrayNode::Output(op),
            self.0.batches,
        )
    }
}

/// One step yielded by a [`LineageCursor`].
#[derive(Clone, Debug)]
pub struct CursorStep {
    /// The operator traversed.
    pub op_id: OpId,
    /// The input index traversed.
    pub input_idx: usize,
    /// The step's result cells (on the edge's target array).
    pub cells: CellSet,
    /// The step's diagnostics.
    pub report: StepReport,
}

/// A streaming lineage query: yields one [`CursorStep`] per traversal edge
/// instead of only the final answer, so callers can render or abort
/// long multi-step traces incrementally.  [`finish`](LineageCursor::finish)
/// drains the remaining steps and returns the final [`QueryResult`].
pub struct LineageCursor<'s, 'a> {
    session: &'s mut QuerySession<'a>,
    direction: Direction,
    edges: Arc<Vec<Edge>>,
    next: usize,
    frontier: Frontier,
    reports: Vec<QueryReport>,
    to: ArrayNode,
    started: Instant,
}

impl<'s, 'a> LineageCursor<'s, 'a> {
    fn new(
        session: &'s mut QuerySession<'a>,
        direction: Direction,
        from: ArrayNode,
        to: ArrayNode,
        batches: Vec<Vec<Coord>>,
    ) -> Result<Self, QueryError> {
        let edges = session.plan_for(direction, &from, &to)?;
        let from_shape = session.array_shape(&from)?;
        let mut frontier = Frontier::new();
        frontier.insert(
            from.clone(),
            batches
                .iter()
                .map(|cells| CellSet::from_coords(from_shape, cells.iter().copied()))
                .collect::<Vec<_>>(),
        );
        let reports = vec![QueryReport::default(); batches.len()];
        Ok(LineageCursor {
            session,
            direction,
            edges,
            next: 0,
            frontier,
            reports,
            to,
            started: Instant::now(),
        })
    }

    /// Remaining traversal edges (including skipped empty ones).
    pub fn remaining_steps(&self) -> usize {
        self.edges.len() - self.next
    }

    /// Executes the next traversal edge, returning its step result.  Edges
    /// whose intermediates are empty are skipped silently.  Returns `None`
    /// when the traversal is complete.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<CursorStep, QueryError>> {
        while self.next < self.edges.len() {
            let (op_id, input_idx) = self.edges[self.next];
            self.next += 1;
            match self.session.run_edge(
                self.direction,
                op_id,
                input_idx,
                &mut self.frontier,
                &mut self.reports,
            ) {
                Err(e) => return Some(Err(e)),
                Ok(None) => continue,
                Ok(Some(mut results)) => {
                    let (cells, report) = results.swap_remove(0);
                    return Some(Ok(CursorStep {
                        op_id,
                        input_idx,
                        cells,
                        report,
                    }));
                }
            }
        }
        None
    }

    /// Drains the remaining steps and returns the final result (of the first
    /// query, which is the only one for cursors built from single-query
    /// builders).
    pub fn finish(mut self) -> Result<QueryResult, QueryError> {
        while let Some(step) = self.next() {
            step?;
        }
        let nq = self.reports.len();
        let mut reports = std::mem::take(&mut self.reports);
        for r in &mut reports {
            r.total_elapsed = self.started.elapsed();
        }
        let mut results =
            self.session
                .collect_results(&mut self.frontier, &self.to, reports, nq)?;
        Ok(results.swap_remove(0))
    }
}

// ---------------------------------------------------------------------------
// Legacy explicit-path executor (parity shim).
// ---------------------------------------------------------------------------

/// Executes legacy explicit-path [`LineageQuery`]s against one engine +
/// runtime pair.  Runs on the same step engine as [`QuerySession`]; prefer
/// the session API, which derives paths from the DAG and batches queries.
pub struct QueryExecutor<'a> {
    steps: StepEngine<'a>,
}

impl<'a> QueryExecutor<'a> {
    /// Creates an executor with default options.
    pub fn new(engine: &'a Engine, runtime: &'a mut Runtime) -> Self {
        QueryExecutor {
            steps: StepEngine::new(engine, runtime),
        }
    }

    /// Overrides the executor options.
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.steps.options = options;
        self
    }

    /// Overrides the query-time policy.
    pub fn with_policy(mut self, policy: QueryTimePolicy) -> Self {
        self.steps.policy = policy;
        self
    }

    /// Executes a lineage query against a previously executed workflow run.
    ///
    /// The path is validated against the workflow DAG before anything runs:
    /// a step whose input index is out of range fails with
    /// [`QueryError::BadInputIndex`], and consecutive steps that are not
    /// connected by the named edge (a skipped operator, or the wrong slot)
    /// fail with [`QueryError::InvalidPath`] naming the offending edge.
    pub fn execute(
        &mut self,
        run: &WorkflowRun,
        query: &LineageQuery,
    ) -> Result<QueryResult, QueryError> {
        if query.path.is_empty() {
            return Err(QueryError::EmptyPath);
        }
        let start = Instant::now();

        // --- Structural validation against the DAG -------------------------
        for &(op_id, input_idx) in &query.path {
            let record = run.record(op_id)?;
            if input_idx >= record.meta.input_shapes.len() {
                return Err(QueryError::BadInputIndex {
                    op: op_id,
                    input_idx,
                });
            }
        }
        for k in 0..query.path.len() - 1 {
            // The edge crossed between step k and step k+1: for a backward
            // path, step k's edge must be fed by step k+1's operator; for a
            // forward path, step k+1's edge must be fed by step k's operator.
            let ((edge_op, edge_idx), produced_by, step) = match query.direction {
                Direction::Backward => (query.path[k], query.path[k + 1].0, k),
                Direction::Forward => (query.path[k + 1], query.path[k].0, k + 1),
            };
            let node = run.workflow.node(edge_op).map_err(EngineError::Workflow)?;
            let src = &node.inputs[edge_idx];
            let connected = matches!(src, InputSource::Operator(p) if *p == produced_by);
            if !connected {
                return Err(QueryError::InvalidPath {
                    step,
                    op: edge_op,
                    input_idx: edge_idx,
                    detail: format!(
                        "input {edge_idx} of operator {edge_op} is fed by {}, not by \
                         operator {produced_by}; the path skips an operator or \
                         crosses the wrong slot",
                        array_node_of(src)
                    ),
                });
            }
        }

        // --- Walk the path on the shared step engine -----------------------
        let (first_op, first_idx) = query.path[0];
        let first_record = run.record(first_op)?;
        let initial_shape = match query.direction {
            Direction::Backward => first_record.meta.output_shape,
            Direction::Forward => first_record.meta.input_shapes[first_idx],
        };
        let mut current = CellSet::from_coords(initial_shape, query.cells.iter().copied());
        let mut report = QueryReport::default();
        for &(op_id, input_idx) in &query.path {
            let results = self.steps.step_many(
                run,
                op_id,
                input_idx,
                query.direction,
                std::slice::from_ref(&current),
            )?;
            let (cells, step_report) = results.into_iter().next().expect("one result");
            current = cells;
            report.steps.push(step_report);
        }
        report.total_elapsed = start.elapsed();
        Ok(QueryResult {
            cells: current,
            report,
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::model::{LineageStrategy, StorageStrategy};
    use std::collections::HashMap;
    use std::sync::Arc;
    use subzero_array::{Array, Shape};
    use subzero_engine::ops::{
        AggregateKind, BinaryKind, Convolve, Elementwise1, Elementwise2, GlobalAggregate, UnaryKind,
    };
    use subzero_engine::Workflow;

    /// scale -> convolve(r=1) -> global mean
    fn pipeline() -> Arc<Workflow> {
        let mut b = Workflow::builder("q");
        let a = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))), "img");
        let c = b.add_unary(Arc::new(Convolve::box_blur(1)), a);
        let _m = b.add_unary(Arc::new(GlobalAggregate::new(AggregateKind::Mean)), c);
        Arc::new(b.build().unwrap())
    }

    fn externals() -> HashMap<String, Array> {
        let mut m = HashMap::new();
        m.insert("img".to_string(), Array::filled(Shape::d2(6, 6), 1.0));
        m
    }

    fn run_pipeline(strategy: LineageStrategy) -> (Engine, Runtime, WorkflowRun) {
        let wf = pipeline();
        let mut rt = Runtime::in_memory();
        rt.set_strategy(strategy);
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();
        (engine, rt, run)
    }

    #[test]
    fn backward_query_through_mapping_operators() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        // Trace one cell of the convolve output back through convolve and
        // scale: radius-1 neighbourhood, then identity.
        let q = LineageQuery::backward(vec![Coord::d2(3, 3)], vec![(1, 0), (0, 0)]);
        let result = exec.execute(&run, &q).unwrap();
        assert_eq!(result.cells.len(), 9);
        assert!(result.cells.contains(&Coord::d2(2, 2)));
        assert_eq!(result.report.steps.len(), 2);
        assert!(result
            .report
            .steps
            .iter()
            .all(|s| s.method == StepMethod::Mapping));
    }

    #[test]
    fn session_backward_query_infers_the_path() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut session = QuerySession::new(&engine, &mut rt, &run);
        // Same trace as above, but no hand-assembled path: from the convolve
        // output back to the source image.
        let result = session
            .backward(vec![Coord::d2(3, 3)])
            .from(1)
            .to_source("img")
            .unwrap();
        assert_eq!(result.cells.len(), 9);
        assert!(result.cells.contains(&Coord::d2(2, 2)));
        assert_eq!(result.report.steps.len(), 2);
        // Stopping at the scale operator's output instead.
        let result = session
            .backward(vec![Coord::d2(3, 3)])
            .from(1)
            .to(0)
            .unwrap();
        assert_eq!(result.cells.len(), 9);
        assert_eq!(result.report.steps.len(), 1);
    }

    #[test]
    fn session_forward_query_infers_the_path() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut session = QuerySession::new(&engine, &mut rt, &run);
        let result = session
            .forward(vec![Coord::d2(0, 0)])
            .from_source("img")
            .to(2)
            .unwrap();
        assert_eq!(result.cells.to_coords(), vec![Coord::d2(0, 0)]);
        assert_eq!(result.report.steps.len(), 3);
        // From an operator's output array.
        let result = session
            .forward(vec![Coord::d2(0, 0)])
            .from(0)
            .to(1)
            .unwrap();
        assert_eq!(result.report.steps.len(), 1);
        assert_eq!(result.cells.len(), 4, "corner neighbourhood");
    }

    #[test]
    fn session_full_trace_returns_per_source_answers() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut session = QuerySession::new(&engine, &mut rt, &run);
        let traced = session
            .backward(vec![Coord::d2(3, 3)])
            .from(1)
            .to_sources()
            .unwrap();
        assert_eq!(traced.len(), 1);
        assert_eq!(traced[0].0, "img");
        assert_eq!(traced[0].1.cells.len(), 9);
    }

    #[test]
    fn session_missing_origin_and_bad_endpoints_error() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut session = QuerySession::new(&engine, &mut rt, &run);
        assert!(matches!(
            session.backward(vec![Coord::d2(0, 0)]).to_source("img"),
            Err(QueryError::MissingOrigin)
        ));
        assert!(matches!(
            session
                .backward(vec![Coord::d2(0, 0)])
                .from(1)
                .to_source("nope"),
            Err(QueryError::Path(PathError::UnknownSource(_)))
        ));
        assert!(matches!(
            session.backward(vec![Coord::d2(0, 0)]).from(99).to(0),
            Err(QueryError::Path(PathError::UnknownOperator(99)))
        ));
        // Forward from a downstream array to an upstream operator: no path.
        assert!(matches!(
            session.forward(vec![Coord::d2(0, 0)]).from(2).to(0),
            Err(QueryError::Path(PathError::NoPath { .. }))
        ));
    }

    #[test]
    fn batched_queries_match_one_at_a_time() {
        // Across strategies (incl. a mismatched-direction store that scans),
        // backward_many/forward_many return exactly what per-query calls do.
        let strategies = vec![
            LineageStrategy::new(),
            LineageStrategy::uniform([1], vec![StorageStrategy::full_many()]),
            LineageStrategy::uniform([1], vec![StorageStrategy::full_one_forward()]),
        ];
        for strategy in strategies {
            let (engine, mut rt, run) = run_pipeline(strategy);
            let batches: Vec<Vec<Coord>> = (0..5)
                .map(|i| vec![Coord::d2(i, i), Coord::d2(i, 5 - i)])
                .collect();
            let mut session = QuerySession::new(&engine, &mut rt, &run);
            let singles: Vec<QueryResult> = batches
                .iter()
                .map(|cells| {
                    session
                        .backward(cells.clone())
                        .from(1)
                        .to_source("img")
                        .unwrap()
                })
                .collect();
            let batched = session
                .backward_many(batches.clone())
                .from(1)
                .to_source("img")
                .unwrap();
            assert_eq!(batched.len(), singles.len());
            for (b, s) in batched.iter().zip(&singles) {
                assert_eq!(b.cells, s.cells);
                assert_eq!(b.report.steps.len(), s.report.steps.len());
                for (bs, ss) in b.report.steps.iter().zip(&s.report.steps) {
                    assert_eq!(bs.method, ss.method);
                    assert_eq!(bs.scanned, ss.scanned);
                }
            }
            // Forward batches too.
            let fwd_singles: Vec<QueryResult> = batches
                .iter()
                .map(|cells| {
                    session
                        .forward(cells.clone())
                        .from_source("img")
                        .to(1)
                        .unwrap()
                })
                .collect();
            let fwd_batched = session
                .forward_many(batches)
                .from_source("img")
                .to(1)
                .unwrap();
            for (b, s) in fwd_batched.iter().zip(&fwd_singles) {
                assert_eq!(b.cells, s.cells);
            }
        }
    }

    /// A diamond workflow whose two branches have different lineage
    /// footprints: src -> scale -> {blur, shift-free scale} -> mean2.
    fn diamond() -> (Arc<Workflow>, HashMap<String, Array>) {
        let mut b = Workflow::builder("diamond");
        let a = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))), "ext");
        let blur = b.add_unary(Arc::new(Convolve::box_blur(1)), a);
        let ident = b.add_unary(Arc::new(Elementwise1::new(UnaryKind::Offset(1.0))), a);
        let _join = b.add_binary(Arc::new(Elementwise2::new(BinaryKind::Mean)), blur, ident);
        let wf = Arc::new(b.build().unwrap());
        let mut m = HashMap::new();
        m.insert("ext".to_string(), Array::filled(Shape::d2(6, 6), 1.0));
        (wf, m)
    }

    #[test]
    fn diamond_inference_equals_union_of_per_path_answers() {
        // Satellite: on a join + fan-out workflow the inferred multi-path
        // answer must equal the union of hand-built per-path answers, for
        // both the mapping-function strategy and stored lineage.
        let (wf, inputs) = diamond();
        let strategies = vec![
            ("mapping", LineageStrategy::new()),
            (
                "stored",
                LineageStrategy::uniform(0..4, vec![StorageStrategy::full_many()]),
            ),
        ];
        for (label, strategy) in strategies {
            let mut rt = Runtime::in_memory();
            rt.set_strategy(strategy);
            let mut engine = Engine::new();
            let run = engine.execute(&wf, &inputs, &mut rt).unwrap();
            let cells = vec![Coord::d2(2, 2), Coord::d2(3, 4)];

            // Hand-built per-path answers through each branch of the join.
            let mut exec = QueryExecutor::new(&engine, &mut rt);
            let via_blur = exec
                .execute(
                    &run,
                    &LineageQuery::backward(cells.clone(), vec![(3, 0), (1, 0), (0, 0)]),
                )
                .unwrap();
            let via_ident = exec
                .execute(
                    &run,
                    &LineageQuery::backward(cells.clone(), vec![(3, 1), (2, 0), (0, 0)]),
                )
                .unwrap();
            let mut union = via_blur.cells.clone();
            union.union_with(&via_ident.cells);

            // Forward per-path answers: fan-out then join.
            let fwd_cells = vec![Coord::d2(2, 2)];
            let fwd_blur = exec
                .execute(
                    &run,
                    &LineageQuery::forward(fwd_cells.clone(), vec![(0, 0), (1, 0), (3, 0)]),
                )
                .unwrap();
            let fwd_ident = exec
                .execute(
                    &run,
                    &LineageQuery::forward(fwd_cells.clone(), vec![(0, 0), (2, 0), (3, 1)]),
                )
                .unwrap();
            let mut fwd_union = fwd_blur.cells.clone();
            fwd_union.union_with(&fwd_ident.cells);
            drop(exec);

            let mut session = QuerySession::new(&engine, &mut rt, &run);
            let inferred = session
                .backward(cells.clone())
                .from(3)
                .to_source("ext")
                .unwrap();
            assert_eq!(inferred.cells, union, "backward union differs ({label})");
            let fwd_inferred = session.forward(fwd_cells).from_source("ext").to(3).unwrap();
            assert_eq!(
                fwd_inferred.cells, fwd_union,
                "forward union differs ({label})"
            );
        }
    }

    #[test]
    fn cursor_streams_per_step_results() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut session = QuerySession::new(&engine, &mut rt, &run);
        let mut cursor = session
            .backward(vec![Coord::d2(3, 3)])
            .from(1)
            .cursor_to_source("img")
            .unwrap();
        assert_eq!(cursor.remaining_steps(), 2);
        let first = cursor.next().unwrap().unwrap();
        assert_eq!(first.op_id, 1);
        assert_eq!(first.cells.len(), 9, "blur neighbourhood");
        let second = cursor.next().unwrap().unwrap();
        assert_eq!(second.op_id, 0);
        let final_result = cursor.finish().unwrap();
        assert_eq!(final_result.cells.len(), 9);
        assert_eq!(final_result.report.steps.len(), 2);
    }

    #[test]
    fn forward_query_through_mapping_operators() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        // A corner input pixel influences its 4-cell neighbourhood after the
        // convolve, and the single mean cell at the end.
        let q = LineageQuery::forward(vec![Coord::d2(0, 0)], vec![(0, 0), (1, 0), (2, 0)]);
        let result = exec.execute(&run, &q).unwrap();
        assert_eq!(result.cells.to_coords(), vec![Coord::d2(0, 0)]);
        assert_eq!(result.report.steps.len(), 3);
    }

    #[test]
    fn entire_array_optimization_short_circuits_all_to_all() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        // Backward from the global mean: its lineage is the whole convolve
        // output, so the step is answered by the entire-array optimization
        // and the remaining steps saturate.
        let q = LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(2, 0), (1, 0), (0, 0)]);
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        let result = exec.execute(&run, &q).unwrap();
        assert!(result.cells.is_full());
        // The first step (global mean) saturates via mapping or entire-array;
        // with a full intermediate the later all-to-all steps do not apply
        // (convolve is not all-to-all) but mapping still saturates them.
        assert_eq!(result.report.steps.len(), 3);

        // With the optimization disabled the answer is identical, just slower.
        let mut exec = QueryExecutor::new(&engine, &mut rt).with_options(QueryOptions {
            entire_array_optimization: false,
            query_time_optimizer: true,
        });
        let result2 = exec.execute(&run, &q).unwrap();
        assert!(result2.cells.is_full());
    }

    #[test]
    fn stored_lineage_answers_when_mapping_not_assigned() {
        // Store full lineage for the convolve operator and force its use by
        // assigning only a Full strategy.
        let mut strategy = LineageStrategy::new();
        strategy.set(1, vec![StorageStrategy::full_one()]);
        let (engine, mut rt, run) = run_pipeline(strategy);
        assert!(rt.has_lineage(run.run_id, 1));
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        let q = LineageQuery::backward(vec![Coord::d2(3, 3)], vec![(1, 0)]);
        let result = exec.execute(&run, &q).unwrap();
        assert_eq!(result.cells.len(), 9);
        assert_eq!(result.report.steps[0].method, StepMethod::Stored);
    }

    #[test]
    fn blackbox_step_reexecutes() {
        // No strategy and a non-mapping operator: force re-execution by
        // wrapping convolve in a black-box-only operator.
        use subzero_array::ArrayRef;
        use subzero_engine::{LineageSink, Operator};

        struct OpaqueBlur;
        impl Operator for OpaqueBlur {
            fn name(&self) -> &str {
                "opaque-blur"
            }
            fn output_shape(&self, s: &[Shape]) -> Shape {
                s[0]
            }
            fn supported_modes(&self) -> Vec<LineageMode> {
                vec![LineageMode::Full, LineageMode::Blackbox]
            }
            fn run(
                &self,
                inputs: &[ArrayRef],
                cur_modes: &[LineageMode],
                sink: &mut dyn LineageSink,
            ) -> Array {
                let input = &inputs[0];
                if cur_modes.contains(&LineageMode::Full) {
                    for (c, _) in input.iter() {
                        sink.lwrite(vec![c], vec![input.shape().neighborhood(&c, 1)]);
                    }
                }
                input.clone().map(|v| v)
            }
        }

        let mut b = Workflow::builder("bb");
        let _x = b.add_source(Arc::new(OpaqueBlur), "img");
        let wf = Arc::new(b.build().unwrap());
        let mut rt = Runtime::in_memory();
        let mut engine = Engine::new();
        let run = engine.execute(&wf, &externals(), &mut rt).unwrap();

        let mut exec = QueryExecutor::new(&engine, &mut rt);
        let q = LineageQuery::backward(vec![Coord::d2(2, 2)], vec![(0, 0)]);
        let result = exec.execute(&run, &q).unwrap();
        assert_eq!(result.cells.len(), 9);
        assert_eq!(result.report.steps[0].method, StepMethod::Reexecution);
        assert_eq!(result.report.reexecutions(), 1);

        // The session caches traced pairs: a second query against the same
        // operator reuses them (observable only as identical answers here).
        let mut session = QuerySession::new(&engine, &mut rt, &run);
        let a = session
            .backward(vec![Coord::d2(2, 2)])
            .from(0)
            .to_source("img")
            .unwrap();
        let b = session
            .backward(vec![Coord::d2(2, 2)])
            .from(0)
            .to_source("img")
            .unwrap();
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.cells.len(), 9);
    }

    #[test]
    fn errors_for_bad_queries() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        assert!(matches!(
            exec.execute(&run, &LineageQuery::backward(vec![], vec![])),
            Err(QueryError::EmptyPath)
        ));
        assert!(matches!(
            exec.execute(
                &run,
                &LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(0, 7)])
            ),
            Err(QueryError::BadInputIndex { .. })
        ));
        assert!(matches!(
            exec.execute(
                &run,
                &LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(99, 0)])
            ),
            Err(QueryError::Engine(_))
        ));
    }

    #[test]
    fn invalid_path_names_the_offending_edge() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut exec = QueryExecutor::new(&engine, &mut rt);
        // Backward path that skips the convolve: mean's input is fed by the
        // convolve (operator 1), not by scale (operator 0).  The shapes
        // happen to be compatible, so without DAG validation this would
        // return a silently-wrong answer.
        let q = LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(2, 0), (0, 0)]);
        let err = exec.execute(&run, &q).unwrap_err();
        match err {
            QueryError::InvalidPath {
                step,
                op,
                input_idx,
                ref detail,
            } => {
                assert_eq!(step, 0);
                assert_eq!(op, 2);
                assert_eq!(input_idx, 0);
                assert!(detail.contains("operator 1"), "detail: {detail}");
            }
            other => panic!("expected InvalidPath, got {other:?}"),
        }
        assert!(err.to_string().contains("step 0"));

        // Forward variant: the mean (op 2) does not feed the convolve (1).
        let q = LineageQuery::forward(vec![Coord::d2(0, 0)], vec![(2, 0), (1, 0)]);
        let err = exec.execute(&run, &q).unwrap_err();
        assert!(matches!(
            err,
            QueryError::InvalidPath { step: 1, op: 1, .. }
        ));
    }

    #[test]
    fn query_time_policy_estimates() {
        let policy = QueryTimePolicy::default();
        // Indexed lookups over a few cells are always preferred.
        assert!(policy.prefer_stored(true, 10, 100_000, Duration::from_millis(1)));
        // A full scan of a huge store versus a fast operator prefers re-execution.
        assert!(!policy.prefer_stored(false, 10, 10_000_000, Duration::from_micros(50)));
        // Estimates scale with entry counts.
        assert!(policy.stored_estimate(false, 10, 1000) > policy.stored_estimate(true, 10, 1000));
    }

    #[test]
    fn query_time_optimizer_switches_to_reexecution_on_mismatched_index() {
        // Store only forward-optimized lineage, then run a backward query.
        // With the query-time optimizer the step may fall back to
        // re-execution; without it the step must scan.
        let mut strategy = LineageStrategy::new();
        strategy.set(1, vec![StorageStrategy::full_one_forward()]);
        let (engine, mut rt, run) = run_pipeline(strategy.clone());
        let q = LineageQuery::backward(vec![Coord::d2(3, 3)], vec![(1, 0)]);

        let mut exec = QueryExecutor::new(&engine, &mut rt).with_options(QueryOptions {
            entire_array_optimization: true,
            query_time_optimizer: false,
        });
        let static_result = exec.execute(&run, &q).unwrap();
        assert_eq!(static_result.report.steps[0].method, StepMethod::Stored);
        assert!(static_result.report.any_scan());

        let (engine, mut rt, run) = run_pipeline(strategy);
        let mut exec = QueryExecutor::new(&engine, &mut rt).with_policy(QueryTimePolicy {
            // Make scans look expensive so the optimizer re-executes.
            entry_cost: Duration::from_millis(10),
            ..QueryTimePolicy::default()
        });
        let dynamic_result = exec.execute(&run, &q).unwrap();
        assert_eq!(
            dynamic_result.report.steps[0].method,
            StepMethod::Reexecution
        );
        // Both approaches agree on the answer.
        assert_eq!(static_result.cells, dynamic_result.cells);
    }

    #[test]
    fn spec_round_trips_through_session() {
        let (engine, mut rt, run) = run_pipeline(LineageStrategy::new());
        let mut session = QuerySession::new(&engine, &mut rt, &run);
        let spec = QuerySpec::backward_to_source(vec![Coord::d2(3, 3)], 1, "img");
        let via_spec = session.query(&spec).unwrap();
        let via_builder = session
            .backward(vec![Coord::d2(3, 3)])
            .from(1)
            .to_source("img")
            .unwrap();
        assert_eq!(via_spec.cells, via_builder.cells);
        // Malformed: backward from an external array.
        let bad = QuerySpec {
            direction: Direction::Backward,
            cells: vec![],
            from: ArrayNode::external("img"),
            to: ArrayNode::Output(0),
        };
        assert!(matches!(session.query(&bad), Err(QueryError::Spec(_))));
    }
}
