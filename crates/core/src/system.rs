//! The SubZero system façade.
//!
//! [`SubZero`] wires the pieces together the way Figure 3 of the paper does:
//! a workflow executor ([`Engine`]), the lineage capture [`Runtime`] with its
//! operator-specific datastores, and the query surface — a [`QuerySession`]
//! borrowed per run via [`SubZero::session`] (with the legacy explicit-path
//! [`QueryExecutor`] underneath as a shim).  The lineage strategy is supplied
//! either manually or by the `subzero-optimizer` crate.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use subzero_array::Array;
use subzero_engine::executor::{EngineError, WorkflowRun};
use subzero_engine::{Engine, Workflow};

use crate::capture::{CaptureConfig, CaptureMode};
use crate::model::LineageStrategy;
use crate::query::{
    LineageQuery, QueryCache, QueryError, QueryExecutor, QueryOptions, QueryResult, QuerySession,
    QueryTimePolicy,
};
use crate::runtime::{CaptureStats, IngestMode, Runtime};
use subzero_engine::executor::CaptureError;

/// The SubZero lineage system: workflow execution with lineage capture, plus
/// lineage query execution.
pub struct SubZero {
    engine: Engine,
    runtime: Runtime,
    options: QueryOptions,
    policy: QueryTimePolicy,
    /// Plans + re-execution traces derived at query time, kept across
    /// session borrows (and across runs of equal workflows, for plans).
    query_cache: QueryCache,
}

impl Default for SubZero {
    fn default() -> Self {
        Self::new()
    }
}

impl SubZero {
    /// Creates a system whose lineage datastores live in memory.
    pub fn new() -> Self {
        SubZero {
            engine: Engine::new(),
            runtime: Runtime::in_memory(),
            options: QueryOptions::default(),
            policy: QueryTimePolicy::default(),
            query_cache: QueryCache::new(),
        }
    }

    /// Creates a system whose lineage datastores persist under `dir`.
    pub fn with_storage_dir(dir: impl Into<PathBuf>) -> Self {
        SubZero {
            engine: Engine::new(),
            runtime: Runtime::on_disk(dir),
            options: QueryOptions::default(),
            policy: QueryTimePolicy::default(),
            query_cache: QueryCache::new(),
        }
    }

    /// Replaces the workflow-level lineage strategy (applies to subsequent
    /// executions).
    pub fn set_strategy(&mut self, strategy: LineageStrategy) {
        self.runtime.set_strategy(strategy);
    }

    /// The current lineage strategy.
    pub fn strategy(&self) -> &LineageStrategy {
        self.runtime.strategy()
    }

    /// Sets the number of region pairs per sealed capture batch (1 = the
    /// legacy per-pair hand-off from the executor to the runtime).
    pub fn set_capture_batch_size(&mut self, batch_size: usize) {
        self.engine.set_capture_batch_size(batch_size);
    }

    /// Selects how the runtime hands captured pairs to the datastores
    /// (batched by default; [`IngestMode::PerPair`] is the legacy reference
    /// path used for parity testing and benchmarking).
    pub fn set_ingest_mode(&mut self, mode: IngestMode) {
        self.runtime.set_ingest_mode(mode);
    }

    /// Sets the number of worker threads used to encode capture batches.
    pub fn set_capture_workers(&mut self, workers: usize) {
        self.runtime.set_workers(workers);
    }

    /// Selects whether capture runs on the executor thread
    /// ([`CaptureMode::Sync`], the default and parity reference) or through
    /// the bounded queue and background flusher pool
    /// ([`CaptureMode::Async`]), which takes encode + store time out of
    /// operator wall-clock.
    pub fn set_capture_mode(&mut self, mode: CaptureMode) {
        self.runtime.set_capture_mode(mode);
    }

    /// Replaces the async capture pipeline configuration (queue depth,
    /// flusher count, overflow policy).
    pub fn set_capture_config(&mut self, config: CaptureConfig) {
        self.runtime.set_capture_config(config);
    }

    /// Flush barrier for async capture: blocks until every staged batch has
    /// been applied to its datastores and reports any background flusher
    /// failure.  Queries and statistics calls do this implicitly; benchmarks
    /// call it to separate drain time from operator wall-clock.
    pub fn flush_capture(&mut self) -> Result<(), CaptureError> {
        self.runtime.flush_capture()
    }

    /// Overrides the query executor options (entire-array optimization,
    /// query-time optimizer).
    pub fn set_query_options(&mut self, options: QueryOptions) {
        self.options = options;
    }

    /// Overrides the query-time optimizer cost policy.
    pub fn set_query_time_policy(&mut self, policy: QueryTimePolicy) {
        self.policy = policy;
    }

    /// Executes one instance of `workflow` over the given external inputs,
    /// capturing lineage according to the current strategy.
    pub fn execute(
        &mut self,
        workflow: &Arc<Workflow>,
        inputs: &HashMap<String, Array>,
    ) -> Result<WorkflowRun, EngineError> {
        self.engine.execute(workflow, inputs, &mut self.runtime)
    }

    /// Borrows a [`QuerySession`] pinned to one executed run: the primary
    /// query surface.  Sessions derive operator traversals from the workflow
    /// DAG (`session.backward(cells).from(op).to_source("img")`), batch
    /// queries so they share decoded scans and datastore handles
    /// (`session.backward_many(...)`), stream per-step results through a
    /// [`LineageCursor`](crate::query::LineageCursor), and serve derived
    /// plans and traced re-execution pairs from the system's persistent
    /// [`QueryCache`] — so a session borrowed tomorrow reuses what a session
    /// derived today.
    ///
    /// ```
    /// use std::collections::HashMap;
    /// use std::sync::Arc;
    /// use subzero::prelude::*;
    /// use subzero_engine::ops::{Elementwise1, UnaryKind};
    ///
    /// let mut b = Workflow::builder("session-doc");
    /// let scale = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))), "img");
    /// let wf = Arc::new(b.build().unwrap());
    ///
    /// let mut subzero = SubZero::new();
    /// let mut inputs = HashMap::new();
    /// inputs.insert("img".to_string(), Array::from_rows(&[vec![1.0, 3.0]]));
    /// let run = subzero.execute(&wf, &inputs).unwrap();
    ///
    /// // The session derives the scale -> "img" traversal from the DAG.
    /// let mut session = subzero.session(&run);
    /// let result = session
    ///     .backward(vec![Coord::d2(0, 1)])
    ///     .from(scale)
    ///     .to_source("img")
    ///     .unwrap();
    /// assert_eq!(result.cells.to_coords(), vec![Coord::d2(0, 1)]);
    /// ```
    pub fn session<'a>(&'a mut self, run: &'a WorkflowRun) -> QuerySession<'a> {
        QuerySession::new(&self.engine, &mut self.runtime, run)
            .with_options(self.options)
            .with_policy(self.policy)
            .with_cache(&mut self.query_cache)
    }

    /// Executes a legacy explicit-path lineage query against a previous run.
    ///
    /// Kept as a shim over the same step engine that
    /// [`session`](SubZero::session) queries run on; prefer the session
    /// surface, which derives the path from
    /// the DAG instead of requiring a hand-assembled `(operator, input)`
    /// step vector.
    pub fn query(
        &mut self,
        run: &WorkflowRun,
        query: &LineageQuery,
    ) -> Result<QueryResult, QueryError> {
        QueryExecutor::new(&self.engine, &mut self.runtime)
            .with_options(self.options)
            .with_policy(self.policy)
            .execute(run, query)
    }

    /// The underlying workflow engine (array store, WAL, re-execution).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The lineage capture runtime (datastores and statistics).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Mutable access to the runtime (used by the optimizer to inspect
    /// datastores and by the harness to clear runs).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// Finishes capture for a run: builds the deferred spatial indexes and
    /// flushes the datastores, charging the time to capture overhead rather
    /// than to the first query.  Optional — lookups finish lazily — but
    /// benchmarks should call it right after [`execute`](SubZero::execute).
    /// Returns the time spent.
    pub fn finish_capture(&mut self, run_id: u64) -> std::time::Duration {
        self.runtime.finish_run(run_id)
    }

    /// Durably publishes a run's captured lineage: finishes ingest, fsyncs
    /// the datastore logs and writes the run's commit record, so the run
    /// survives a crash + reopen of the storage directory.  A run that is
    /// never committed is rolled back wholesale on reopen.  No-op (returns
    /// transaction id 0) for in-memory systems.
    pub fn commit_capture(&mut self, run_id: u64) -> std::io::Result<u64> {
        self.runtime.commit_run(run_id)
    }

    /// Aggregate lineage capture statistics for a run.
    pub fn capture_stats(&self, run_id: u64) -> CaptureStats {
        self.runtime.capture_stats(run_id)
    }

    /// Lineage bytes stored for a run (hash entries plus spatial indexes).
    pub fn lineage_bytes(&self, run_id: u64) -> usize {
        self.runtime.bytes_for_run(run_id)
    }

    /// Bytes of array data (inputs, intermediates and outputs) persisted by
    /// the no-overwrite store.  The paper compares lineage overhead to this
    /// number.
    pub fn array_bytes(&self) -> usize {
        self.engine.store().bytes_stored()
    }

    /// Drops all lineage stored for a run, along with the run's cached
    /// re-execution traces (derived plans are run-independent and stay).
    pub fn clear_lineage(&mut self, run_id: u64) {
        self.runtime.clear_run(run_id);
        self.query_cache.evict_run(run_id);
    }

    /// The cross-session query cache (plans + re-execution traces) and its
    /// hit/miss counters.
    pub fn query_cache(&self) -> &QueryCache {
        &self.query_cache
    }

    /// Mutable access to the query cache (e.g. to clear it wholesale).
    pub fn query_cache_mut(&mut self) -> &mut QueryCache {
        &mut self.query_cache
    }
}

impl std::fmt::Debug for SubZero {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubZero")
            .field("engine", &self.engine)
            .field("runtime", &self.runtime)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StorageStrategy;
    use crate::query::StepMethod;
    use subzero_array::{Coord, Shape};
    use subzero_engine::ops::{BinaryKind, Convolve, Elementwise1, Elementwise2, UnaryKind};

    /// A small two-exposure pipeline reminiscent of the astronomy workflow:
    /// blur both inputs, average them, then threshold.
    fn workflow() -> Arc<Workflow> {
        let mut b = Workflow::builder("mini-lsst");
        let blur_a = b.add_source(Arc::new(Convolve::box_blur(1)), "exp1");
        let blur_b = b.add_source(Arc::new(Convolve::box_blur(1)), "exp2");
        let merged = b.add_binary(
            Arc::new(Elementwise2::new(BinaryKind::Mean)),
            blur_a,
            blur_b,
        );
        let _detect = b.add_unary(
            Arc::new(Elementwise1::new(UnaryKind::Threshold(0.5))),
            merged,
        );
        Arc::new(b.build().unwrap())
    }

    fn inputs() -> HashMap<String, Array> {
        let mut m = HashMap::new();
        let mut img = Array::zeros(Shape::d2(8, 8));
        img.set(&Coord::d2(4, 4), 10.0);
        m.insert("exp1".to_string(), img.clone());
        m.insert("exp2".to_string(), img);
        m
    }

    #[test]
    fn execute_and_query_end_to_end() {
        let mut sz = SubZero::new();
        let wf = workflow();
        let run = sz.execute(&wf, &inputs()).unwrap();
        // The bright source survives thresholding.
        let out = sz.engine().output_of(&run, 3).unwrap();
        assert_eq!(out.get(&Coord::d2(4, 4)), 1.0);

        // Backward query: the detected pixel traces to the 3x3 neighbourhood
        // in the first exposure.
        let mut session = sz.session(&run);
        let result = session
            .backward(vec![Coord::d2(4, 4)])
            .from(3)
            .to_source("exp1")
            .unwrap();
        assert_eq!(result.cells.len(), 9);
        assert!(result.cells.contains(&Coord::d2(3, 3)));
        assert!(result.cells.contains(&Coord::d2(5, 5)));

        // Forward query: the bright input pixel influences its neighbourhood
        // in the final detection.
        let result = session
            .forward(vec![Coord::d2(4, 4)])
            .from_source("exp1")
            .to(3)
            .unwrap();
        assert_eq!(result.cells.len(), 9);

        // Full-workflow trace: both exposures are reached, symmetrically.
        let traced = session
            .backward(vec![Coord::d2(4, 4)])
            .from(3)
            .to_sources()
            .unwrap();
        assert_eq!(traced.len(), 2);
        assert_eq!(traced[0].1.cells.len(), traced[1].1.cells.len());
    }

    #[test]
    fn strategies_change_query_method_but_not_answers() {
        let wf = workflow();

        // Mapping-only (default).
        let mut sz = SubZero::new();
        let run = sz.execute(&wf, &inputs()).unwrap();
        let mapping_answer = sz
            .session(&run)
            .backward(vec![Coord::d2(4, 4)])
            .from(2)
            .to_source("exp1")
            .unwrap();
        assert!(mapping_answer
            .report
            .steps
            .iter()
            .all(|s| s.method == StepMethod::Mapping));

        // Full lineage stored for every operator.
        let mut sz = SubZero::new();
        let mut strategy = LineageStrategy::new();
        for op in 0..4 {
            strategy.set(op, vec![StorageStrategy::full_many()]);
        }
        sz.set_strategy(strategy);
        let run = sz.execute(&wf, &inputs()).unwrap();
        assert!(sz.lineage_bytes(run.run_id) > 0);
        let stored_answer = sz
            .session(&run)
            .backward(vec![Coord::d2(4, 4)])
            .from(2)
            .to_source("exp1")
            .unwrap();
        assert_eq!(stored_answer.cells, mapping_answer.cells);
        assert!(stored_answer
            .report
            .steps
            .iter()
            .all(|s| s.method == StepMethod::Stored));

        // The legacy explicit-path shim agrees with the session on the same
        // single-path traversal.
        #[allow(deprecated)]
        let q = LineageQuery::backward(vec![Coord::d2(4, 4)], vec![(2, 0), (0, 0)]);
        let legacy = sz.query(&run, &q).unwrap();
        assert_eq!(legacy.cells, stored_answer.cells);
    }

    #[test]
    fn query_cache_persists_plans_and_traces_across_sessions() {
        let mut sz = SubZero::new();
        // All-blackbox assignment forces traced re-execution at query time —
        // the expensive artifact the cache exists to keep.
        let mut strategy = LineageStrategy::new();
        for op in 0..4 {
            strategy.set(op, vec![StorageStrategy::blackbox()]);
        }
        sz.set_strategy(strategy);
        let wf = workflow();
        let run = sz.execute(&wf, &inputs()).unwrap();

        let first = sz
            .session(&run)
            .backward(vec![Coord::d2(4, 4)])
            .from(3)
            .to_source("exp1")
            .unwrap();
        let stats = sz.query_cache().stats();
        assert!(stats.plan_misses >= 1, "first session derives the plan");
        assert!(stats.trace_misses >= 1, "first session traces operators");
        assert_eq!(stats.plan_hits, 0);
        let derived = (stats.plan_misses, stats.trace_misses);

        // A later session over the same run re-derives nothing.
        let second = sz
            .session(&run)
            .backward(vec![Coord::d2(4, 4)])
            .from(3)
            .to_source("exp1")
            .unwrap();
        assert_eq!(second.cells, first.cells);
        let stats = sz.query_cache().stats();
        assert_eq!(
            (stats.plan_misses, stats.trace_misses),
            derived,
            "second session must not re-trace or re-plan"
        );
        assert!(stats.plan_hits >= 1);
        assert!(stats.trace_hits >= 1);

        // Clearing the run's lineage evicts its traces; plans depend only on
        // the workflow specification and stay.
        assert!(sz.query_cache().traces_cached() > 0);
        let plans = sz.query_cache().plans_cached();
        assert!(plans > 0);
        sz.clear_lineage(run.run_id);
        assert_eq!(sz.query_cache().traces_cached(), 0);
        assert_eq!(sz.query_cache().plans_cached(), plans);
    }

    #[test]
    fn capture_stats_and_array_bytes_reported() {
        let mut sz = SubZero::new();
        let mut strategy = LineageStrategy::new();
        strategy.set(0, vec![StorageStrategy::full_one()]);
        sz.set_strategy(strategy);
        let wf = workflow();
        let run = sz.execute(&wf, &inputs()).unwrap();
        let stats = sz.capture_stats(run.run_id);
        assert!(stats.pairs > 0);
        assert!(stats.bytes > 0);
        assert!(
            sz.array_bytes() >= 6 * 8 * 8 * 8,
            "inputs + 4 outputs stored"
        );
        sz.clear_lineage(run.run_id);
        assert_eq!(sz.lineage_bytes(run.run_id), 0);
    }
}
