//! The asynchronous capture pipeline.
//!
//! Synchronous capture runs `OpDatastore::store_batch` on the executor
//! thread, so operator wall-clock includes encode + kv-table time.  This
//! module moves that work off the executor: the runtime hands completed
//! [`RegionBatch`]es to a bounded multi-producer queue ([`BoundedQueue`]) and
//! a pool of background flusher threads (the capture pipeline) drains them
//! into the per-operator datastore shards through the existing arena
//! `store_batch` path.
//!
//! Guarantees:
//!
//! * **Byte parity with sync capture.**  Batches of one `(run, operator)`
//!   shard are applied in emission order — each job carries a per-shard
//!   sequence number and flushers wait their turn on the shard — so the
//!   datastore contents are identical to [`CaptureMode::Sync`] at any queue
//!   depth and flusher count.
//! * **Backpressure, not loss.**  With the default [`OverflowPolicy::Block`]
//!   a full queue blocks the producer until a flusher frees a slot; batches
//!   are never dropped.  [`OverflowPolicy::DropNewest`] is available for
//!   load-shedding deployments that prefer losing lineage (a recoverable
//!   cache) over stalling the workflow; drops are counted.
//! * **Errors surface, hangs don't.**  A flusher panic is caught, recorded,
//!   and the queue is failed: blocked producers wake up with the error, the
//!   remaining jobs fast-drain without storing, and the runtime returns the
//!   error from the next engine call ([`CaptureError`]) instead of deadlocking.
//! * **Drain on shutdown.**  Dropping the pipeline closes the queue, lets the
//!   flushers finish every staged batch, and joins them — nothing staged is
//!   lost on a clean shutdown.
//!
//! Every primitive below comes from [`crate::sync`] (never `std::sync`
//! directly, enforced by `cargo xtask lint`): under `--cfg loom` the same
//! code runs against the model-checking shim and `tests/loom.rs` explores
//! every interleaving of the queue, the shard sequencing and the failure
//! paths.  Types marked `#[doc(hidden)]` are exposed for that suite only.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::sync::thread::JoinHandle;
use crate::sync::{lock_or_recover, wait_or_recover, Arc, Condvar, Mutex, MutexGuard};

use subzero_engine::executor::CaptureError;
use subzero_engine::RegionBatch;

use crate::datastore::OpDatastore;

/// How captured batches reach the datastores.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CaptureMode {
    /// Encode and store on the executor thread (the parity reference):
    /// operator wall-clock includes capture time.
    #[default]
    Sync,
    /// Hand completed batches to the bounded capture queue and return;
    /// background flusher threads encode and store them.  Requires batched
    /// ingestion ([`IngestMode::Batched`](crate::runtime::IngestMode)); the
    /// per-pair reference path always stores synchronously.
    Async,
}

/// What a full capture queue does with the next batch.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the producer until a slot frees up (the default): capture is
    /// lossless and byte-identical to sync capture.
    #[default]
    Block,
    /// Drop the incoming batch and count it.  Lineage is a recoverable
    /// cache, so deployments that must never stall the workflow can shed
    /// load here — at the price of *holes* in stored lineage: queries
    /// against an affected operator answer from what was stored and will
    /// silently miss the shed regions.  Callers are responsible for auditing
    /// [`Runtime::dropped_batches`](crate::runtime::Runtime::dropped_batches)
    /// after a run and discarding (or re-capturing) runs that shed — a
    /// per-region fallback to mapping functions/re-execution for the holes
    /// is a roadmap item, not current behaviour.
    DropNewest,
}

/// Configuration of the async capture pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CaptureConfig {
    /// Maximum number of batches staged in the queue (clamped to >= 1).
    /// Deeper queues decouple the executor from slow flushers at the cost of
    /// staging memory (one [`RegionBatch`] per slot).
    pub queue_depth: usize,
    /// Number of background flusher threads (clamped to >= 1).  Shards are
    /// independent, so flushers scale until datastore work runs out — one or
    /// two per storage backend device is usually enough.
    pub flushers: usize,
    /// What to do when the queue is full.
    pub policy: OverflowPolicy,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            queue_depth: 64,
            flushers: 2,
            policy: OverflowPolicy::Block,
        }
    }
}

impl CaptureConfig {
    fn clamped(self) -> Self {
        CaptureConfig {
            queue_depth: self.queue_depth.max(1),
            flushers: self.flushers.max(1),
            policy: self.policy,
        }
    }
}

/// One `(run, operator)` capture shard: the datastores owned by the flusher
/// side while the pipeline is running, plus the in-order application state.
///
/// Sequencing state and datastore state live under *separate* mutexes: the
/// sequence gate is only ever held for bookkeeping (never across a store),
/// so the producer's shed path and waiting flushers are never blocked behind
/// an in-progress `store_batch` — only the flusher whose turn it is touches
/// `state`, and sequencing guarantees that flusher exclusive access.
#[doc(hidden)]
pub struct Shard {
    seq: Mutex<SeqState>,
    applied: Condvar,
    state: Mutex<ShardState>,
}

/// In-order application bookkeeping (held briefly, never across a store).
struct SeqState {
    /// Sequence number handed to the next submitted batch.  Lives on the
    /// shard (not derived from any one `collect_batches` call) so repeated
    /// collections for the same `(run, operator)` continue the sequence
    /// instead of colliding with already-applied numbers.
    next_ticket: u64,
    /// Sequence number of the next batch to apply; jobs wait until their
    /// number comes up so shard contents are order-identical to sync capture.
    next_seq: u64,
    /// Sequence numbers shed under [`OverflowPolicy::DropNewest`] while
    /// predecessors were still pending; skipped over as the sequence reaches
    /// them so successors never stall behind a batch that will not arrive.
    skipped: Vec<u64>,
}

#[doc(hidden)]
pub struct ShardState {
    /// One datastore per pair-storing strategy of the operator.
    pub(crate) stores: Vec<OpDatastore>,
    /// Flusher-side time spent storing into this shard (charged back to the
    /// operator's capture statistics when the shard is harvested).
    pub(crate) flush_time: Duration,
}

impl SeqState {
    /// Advances the sequence past `applied_seq` and any directly following
    /// shed batches.
    fn advance_from(&mut self, applied_seq: u64) {
        self.next_seq = applied_seq + 1;
        while let Some(idx) = self.skipped.iter().position(|&s| s == self.next_seq) {
            self.skipped.swap_remove(idx);
            self.next_seq += 1;
        }
    }
}

impl Shard {
    #[doc(hidden)]
    pub fn new(stores: Vec<OpDatastore>) -> Self {
        Shard {
            seq: Mutex::new(SeqState {
                next_ticket: 0,
                next_seq: 0,
                skipped: Vec::new(),
            }),
            applied: Condvar::new(),
            state: Mutex::new(ShardState {
                stores,
                flush_time: Duration::ZERO,
            }),
        }
    }

    /// Locks the sequencing gate, recovering from poisoning (nothing panics
    /// while holding it, but harvest-after-failure must stay usable
    /// regardless).
    fn lock_seq(&self) -> MutexGuard<'_, SeqState> {
        lock_or_recover(&self.seq)
    }

    /// Takes the sequence number for the next submitted batch.
    #[doc(hidden)]
    pub fn ticket(&self) -> u64 {
        let mut gate = self.lock_seq();
        let ticket = gate.next_ticket;
        gate.next_ticket += 1;
        ticket
    }

    /// Locks the datastore state, recovering from poisoning: flusher panics
    /// are caught before they can unwind across this mutex, and
    /// harvest-after-failure must still be able to read statistics.
    pub(crate) fn lock(&self) -> MutexGuard<'_, ShardState> {
        lock_or_recover(&self.state)
    }

    /// Blocks until `seq` is the next batch to apply (on failure the failing
    /// flusher still advances, so this cannot hang).
    fn wait_turn(&self, seq: u64) {
        let mut gate = self.lock_seq();
        while gate.next_seq != seq {
            gate = wait_or_recover(&self.applied, gate);
        }
    }

    /// Marks `seq` applied (or abandoned) and wakes waiters for successors.
    fn advance(&self, seq: u64) {
        let mut gate = self.lock_seq();
        gate.advance_from(seq);
        drop(gate);
        self.applied.notify_all();
    }

    /// Marks a shed batch's sequence number as never-arriving so successors
    /// don't stall behind it.  If it is the current head, advance past it
    /// (and past any shed batches queued up right behind it); otherwise
    /// record it so the flusher that applies its predecessor skips over it.
    /// Only the sequencing gate is taken — never the datastore mutex — so a
    /// shedding producer cannot stall behind an in-progress store.
    #[doc(hidden)]
    pub fn abandon(&self, seq: u64) {
        let mut gate = self.lock_seq();
        if gate.next_seq == seq {
            gate.advance_from(seq);
            drop(gate);
            self.applied.notify_all();
        } else {
            gate.skipped.push(seq);
        }
    }
}

/// One staged unit of flusher work: apply `batch` as the `seq`'th batch of
/// `shard`.  Generic over the batch payload so the loom suite can drive the
/// real flusher loop with trivial (or panic-injecting) payloads; the
/// pipeline itself always uses [`RegionBatch`].
#[doc(hidden)]
pub struct Job<B> {
    pub shard: Arc<Shard>,
    pub seq: u64,
    pub batch: B,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    /// Jobs popped but not yet completed by a flusher.
    in_flight: usize,
    /// Batches dropped under [`OverflowPolicy::DropNewest`].
    dropped: u64,
    /// No further pushes; flushers exit once the queue is empty.
    closed: bool,
    /// A flusher failed: pushes error out, waiting producers wake up, and
    /// remaining jobs fast-drain without storing.
    failed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO with blocking push,
/// blocking pop, failure propagation and an idle barrier.
///
/// This is the hand-off between the executor thread and the capture flusher
/// pool, kept separate so backpressure semantics are testable in isolation.
pub struct BoundedQueue<T> {
    depth: usize,
    policy: OverflowPolicy,
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    idle: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `depth` items (clamped to >= 1).
    pub fn new(depth: usize, policy: OverflowPolicy) -> Self {
        BoundedQueue {
            depth: depth.max(1),
            policy,
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                in_flight: 0,
                dropped: 0,
                closed: false,
                failed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            idle: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner<T>> {
        lock_or_recover(&self.inner)
    }

    /// Stages one item, blocking while the queue is full (under
    /// [`OverflowPolicy::Block`]).  Returns `Ok(true)` when the item was
    /// accepted, `Ok(false)` when it was shed under
    /// [`OverflowPolicy::DropNewest`], and `Err` when the queue has failed or
    /// been closed.
    pub fn push(&self, item: T) -> Result<bool, CaptureError> {
        self.push_with_policy(item, self.policy)
    }

    /// [`push`](BoundedQueue::push) with an explicit overflow policy for this
    /// one item, overriding the queue's configured policy.  The lineage
    /// server uses this to keep query admission lossless
    /// ([`OverflowPolicy::Block`]) on queues whose ingest side is configured
    /// to shed ([`OverflowPolicy::DropNewest`]).
    pub fn push_with_policy(&self, item: T, policy: OverflowPolicy) -> Result<bool, CaptureError> {
        let mut inner = self.lock();
        loop {
            if inner.failed {
                return Err(CaptureError::new("capture queue failed"));
            }
            if inner.closed {
                return Err(CaptureError::new("capture queue closed"));
            }
            if inner.items.len() < self.depth {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(true);
            }
            match policy {
                OverflowPolicy::Block => {
                    inner = wait_or_recover(&self.not_full, inner);
                }
                OverflowPolicy::DropNewest => {
                    inner.dropped += 1;
                    return Ok(false);
                }
            }
        }
    }

    /// Takes the next item, blocking while the queue is empty.  Returns
    /// `None` once the queue is closed and drained; consumers must pair every
    /// `Some` with a later [`task_done`](BoundedQueue::task_done).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.in_flight += 1;
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = wait_or_recover(&self.not_empty, inner);
        }
    }

    /// Takes the next item without blocking.  Returns `None` when the queue
    /// is currently empty (regardless of open/closed state); like
    /// [`pop`](BoundedQueue::pop), every `Some` must be paired with a later
    /// [`task_done`](BoundedQueue::task_done).  The lineage server's
    /// round-robin scheduler uses this to sweep many per-client queues
    /// without parking on any one of them.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.lock();
        let item = inner.items.pop_front()?;
        inner.in_flight += 1;
        drop(inner);
        self.not_full.notify_one();
        Some(item)
    }

    /// Whether the queue has been closed (items may still be draining).
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Marks one popped item as fully processed (successfully or not).
    pub fn task_done(&self) {
        let mut inner = self.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
        if inner.in_flight == 0 && inner.items.is_empty() {
            self.idle.notify_all();
        }
    }

    /// Blocks until every staged item has been popped *and* completed.
    pub fn wait_idle(&self) {
        let mut inner = self.lock();
        while !(inner.items.is_empty() && inner.in_flight == 0) {
            inner = wait_or_recover(&self.idle, inner);
        }
    }

    /// Fails the queue: producers blocked in [`push`](BoundedQueue::push)
    /// wake up with an error and all future pushes error out.  Already-staged
    /// items remain poppable so consumers can fast-drain them.
    pub fn fail(&self) {
        let mut inner = self.lock();
        inner.failed = true;
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Whether [`fail`](BoundedQueue::fail) has been called.
    pub fn is_failed(&self) -> bool {
        self.lock().failed
    }

    /// Closes the queue: no further pushes; consumers drain the remaining
    /// items and then see `None`.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of batches shed under [`OverflowPolicy::DropNewest`].
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Number of staged items not yet popped (for tests and introspection).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether no items are staged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The background flusher pool: owns the queue and the worker threads that
/// drain it into the capture shards.
pub(crate) struct CapturePipeline {
    queue: Arc<BoundedQueue<Job<RegionBatch>>>,
    error: Arc<Mutex<Option<CaptureError>>>,
    handles: Vec<JoinHandle<()>>,
}

impl CapturePipeline {
    /// Starts `config.flushers` background threads draining a queue of
    /// `config.queue_depth` slots.  Each flusher gives `store_workers`
    /// threads to `store_batch` (the runtime splits its worker budget across
    /// the pool so flushers don't oversubscribe the host).
    pub(crate) fn start(config: CaptureConfig, store_workers: usize) -> Self {
        let config = config.clamped();
        let queue = Arc::new(BoundedQueue::new(config.queue_depth, config.policy));
        let error = Arc::new(Mutex::new(None));
        let handles = (0..config.flushers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let error = Arc::clone(&error);
                let workers = store_workers.max(1);
                crate::sync::thread::Builder::new()
                    .name(format!("subzero-capture-flusher-{i}"))
                    .spawn(move || {
                        flusher_loop(&queue, &error, |state, batch: &RegionBatch| {
                            for ds in state.stores.iter_mut() {
                                ds.store_batch(&batch.pairs, workers);
                            }
                        })
                    })
                    .expect("spawn capture flusher thread")
            })
            .collect();
        CapturePipeline {
            queue,
            error,
            handles,
        }
    }

    /// Stages one batch as the `seq`'th of `shard`, blocking on a full queue
    /// under [`OverflowPolicy::Block`].  A dropped batch (under
    /// [`OverflowPolicy::DropNewest`]) still consumes its sequence number so
    /// later batches of the shard don't stall; the shard is told to skip it.
    pub(crate) fn submit(
        &self,
        shard: &Arc<Shard>,
        seq: u64,
        batch: RegionBatch,
    ) -> Result<(), CaptureError> {
        let accepted = self
            .queue
            .push(Job {
                shard: Arc::clone(shard),
                seq,
                batch,
            })
            .map_err(|_| self.error_or_generic())?;
        if !accepted {
            // Shed batch: its sequence number must not stall successors.
            shard.abandon(seq);
        }
        Ok(())
    }

    /// Barrier: blocks until every staged batch has been applied (or
    /// fast-drained after a failure), then reports any recorded flusher
    /// error.
    pub(crate) fn flush(&self) -> Result<(), CaptureError> {
        self.queue.wait_idle();
        match self.take_error() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The first recorded flusher error, if any (left in place so later
    /// calls see it too).
    pub(crate) fn take_error(&self) -> Option<CaptureError> {
        lock_or_recover(&self.error).clone()
    }

    /// Number of batches shed under [`OverflowPolicy::DropNewest`].
    pub(crate) fn dropped_batches(&self) -> u64 {
        self.queue.dropped()
    }

    fn error_or_generic(&self) -> CaptureError {
        self.take_error()
            .unwrap_or_else(|| CaptureError::new("capture pipeline unavailable"))
    }
}

impl Drop for CapturePipeline {
    /// Drain-on-shutdown: close the queue, let the flushers apply everything
    /// still staged, and join them.  On-disk shards therefore reach their
    /// files even when the runtime is dropped without an explicit flush.
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Body of one flusher thread: pop, wait for the shard's turn, apply, bump
/// the shard sequence, repeat.  Panics from `apply` (normally `store_batch`)
/// are caught *inside* the datastore critical section (so the mutex is never
/// poisoned mid-update), recorded, and fail the queue.
///
/// Generic over the batch payload and apply function so `tests/loom.rs` can
/// model-check this exact loop — including the panic path — without real
/// datastores.
#[doc(hidden)]
pub fn flusher_loop<B, F>(
    queue: &BoundedQueue<Job<B>>,
    error: &Mutex<Option<CaptureError>>,
    apply: F,
) where
    F: Fn(&mut ShardState, &B),
{
    while let Some(job) = queue.pop() {
        // Predecessor batches were popped by other flushers (the queue is
        // FIFO); wait until they have been applied.  On failure the failing
        // flusher still advances the gate, so this cannot hang.
        job.shard.wait_turn(job.seq);
        if !queue.is_failed() {
            // Sequencing admits exactly one flusher per shard at a time, so
            // this lock is uncontended by other flushers; it exists so
            // harvest and the pending-shard statistics reads stay safe.
            let mut state = job.shard.lock();
            let start = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                apply(&mut state, &job.batch);
            }));
            match outcome {
                Ok(()) => state.flush_time += start.elapsed(),
                Err(panic) => {
                    // `panic.as_ref()`, not `&panic`: coercing `&Box<dyn
                    // Any>` unsizes the *box* into the trait object and every
                    // downcast of the payload inside would miss.
                    let msg = panic_message(panic.as_ref());
                    let mut slot = lock_or_recover(error);
                    slot.get_or_insert(CaptureError::new(format!(
                        "capture flusher panicked while storing a batch: {msg}"
                    )));
                    drop(slot);
                    queue.fail();
                }
            }
        }
        job.shard.advance(job.seq);
        queue.task_done();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_is_fifo_and_bounded() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4, OverflowPolicy::Block);
        for i in 0..4 {
            assert!(q.push(i).unwrap());
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
            q.task_done();
        }
        assert!(q.is_empty());
        q.close();
        assert_eq!(q.pop(), None);
        assert!(q.push(9).is_err(), "push after close errors");
    }

    #[test]
    fn blocking_push_waits_for_slow_consumer_without_dropping() {
        // The backpressure contract of the ISSUE: a slow flusher with a
        // depth-1 queue must block (not drop) producer batches.
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        let received = Arc::new(Mutex::new(Vec::new()));
        let consumer = {
            let q = Arc::clone(&q);
            let received = Arc::clone(&received);
            std::thread::spawn(move || {
                while let Some(v) = q.pop() {
                    // Slow flusher: hold the single slot hostage for a while.
                    std::thread::sleep(Duration::from_millis(20));
                    received.lock().unwrap().push(v);
                    q.task_done();
                }
            })
        };
        let start = Instant::now();
        for i in 0..5 {
            assert!(q.push(i).unwrap(), "Block policy never sheds");
            assert!(q.len() <= 1, "queue never exceeds its depth");
        }
        // Pushing 5 items through a depth-1 queue with a 20ms consumer must
        // have blocked the producer for several consumer cycles.
        assert!(
            start.elapsed() >= Duration::from_millis(60),
            "producer was not backpressured: {:?}",
            start.elapsed()
        );
        q.wait_idle();
        q.close();
        consumer.join().unwrap();
        assert_eq!(*received.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn drop_newest_policy_sheds_and_counts() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2, OverflowPolicy::DropNewest);
        assert!(q.push(1).unwrap());
        assert!(q.push(2).unwrap());
        assert!(!q.push(3).unwrap(), "full queue sheds under DropNewest");
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.pop(), Some(1));
        q.task_done();
        assert!(q.push(4).unwrap(), "slot freed, accepted again");
    }

    #[test]
    fn failed_queue_wakes_blocked_producer_with_error() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        assert!(q.push(0).unwrap());
        let failer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                q.fail();
            })
        };
        // This push blocks on the full queue until fail() wakes it.
        assert!(q.push(1).is_err(), "blocked producer must error, not hang");
        failer.join().unwrap();
        assert!(q.is_failed());
    }

    #[test]
    fn wait_idle_covers_in_flight_items() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(8, OverflowPolicy::Block));
        let done = Arc::new(AtomicUsize::new(0));
        let consumer = {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while let Some(_v) = q.pop() {
                    std::thread::sleep(Duration::from_millis(5));
                    done.fetch_add(1, Ordering::SeqCst);
                    q.task_done();
                }
            })
        };
        for i in 0..6 {
            q.push(i).unwrap();
        }
        q.wait_idle();
        assert_eq!(done.load(Ordering::SeqCst), 6, "idle only after task_done");
        q.close();
        consumer.join().unwrap();
    }

    #[test]
    fn try_pop_is_non_blocking_and_tracks_in_flight() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2, OverflowPolicy::Block);
        assert_eq!(q.try_pop(), None, "empty queue returns None immediately");
        q.push(7).unwrap();
        assert_eq!(q.try_pop(), Some(7));
        // The popped item is in flight, so the queue is not idle yet.
        q.push(8).unwrap();
        assert_eq!(q.try_pop(), Some(8));
        q.task_done();
        q.task_done();
        q.wait_idle();
        assert_eq!(q.try_pop(), None);
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_pop(), None, "closed+drained queue returns None");
    }

    #[test]
    fn push_with_policy_overrides_queue_policy() {
        // Queue configured to shed; a per-push Block override must not shed.
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1, OverflowPolicy::DropNewest));
        assert!(q.push(0).unwrap());
        assert!(!q.push(1).unwrap(), "configured policy sheds when full");
        assert_eq!(q.dropped(), 1);
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                let v = q.pop();
                q.task_done();
                v
            })
        };
        // Block override: waits for the consumer instead of shedding.
        assert!(q.push_with_policy(2, OverflowPolicy::Block).unwrap());
        assert_eq!(consumer.join().unwrap(), Some(0));
        assert_eq!(q.dropped(), 1, "Block override never sheds");
    }

    #[test]
    fn config_clamps_to_usable_values() {
        let c = CaptureConfig {
            queue_depth: 0,
            flushers: 0,
            policy: OverflowPolicy::Block,
        }
        .clamped();
        assert_eq!(c.queue_depth, 1);
        assert_eq!(c.flushers, 1);
        let d = CaptureConfig::default();
        assert!(d.queue_depth >= 1 && d.flushers >= 1);
        assert_eq!(d.policy, OverflowPolicy::Block);
    }
}
