//! Byte-parity of async capture with the synchronous reference path.
//!
//! The async pipeline's contract is that datastore contents are *identical*
//! to [`CaptureMode::Sync`] at any queue depth and flusher count: batches of
//! one shard apply in emission order, backpressure blocks instead of
//! dropping, and drain-on-shutdown applies everything still staged.  These
//! properties randomise the workload (array shape, capture batch size,
//! strategy assignment) and sweep the depth × flusher matrix the ISSUE pins:
//! depths {1, 4, 64} × flushers {1, 2, 8}.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use subzero::capture::{CaptureConfig, CaptureMode, OverflowPolicy};
use subzero::model::{LineageStrategy, StorageStrategy};
use subzero::runtime::Runtime;
use subzero_array::{Array, Coord, Shape};
use subzero_engine::ops::{BinaryKind, Convolve, Elementwise1, Elementwise2, UnaryKind};
use subzero_engine::{Engine, Workflow};

const QUEUE_DEPTHS: [usize; 3] = [1, 4, 64];
const FLUSHER_COUNTS: [usize; 3] = [1, 2, 8];

/// A three-operator workflow (scale -> blur -> mean with the scaled input)
/// whose operators all store pairs under the assigned strategies.
fn workflow() -> Arc<Workflow> {
    let mut b = Workflow::builder("capture-parity");
    let scale = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(1.5))), "img");
    let blur = b.add_unary(Arc::new(Convolve::box_blur(1)), scale);
    let _mean = b.add_binary(Arc::new(Elementwise2::new(BinaryKind::Mean)), scale, blur);
    Arc::new(b.build().unwrap())
}

fn externals(rows: u32, cols: u32) -> HashMap<String, Array> {
    let shape = Shape::d2(rows, cols);
    let mut img = Array::zeros(shape);
    for r in 0..rows {
        for c in 0..cols {
            img.set(&Coord::d2(r, c), ((r * cols + c) % 17) as f64 - 3.0);
        }
    }
    let mut m = HashMap::new();
    m.insert("img".to_string(), img);
    m
}

/// The strategy sets a case may assign to each operator.
fn strategy_sets() -> Vec<Vec<StorageStrategy>> {
    vec![
        vec![StorageStrategy::full_one()],
        vec![StorageStrategy::full_many()],
        vec![StorageStrategy::full_one_forward()],
        vec![StorageStrategy::full_one(), StorageStrategy::full_many()],
    ]
}

fn assignment(picks: &[usize]) -> LineageStrategy {
    let sets = strategy_sets();
    let mut strategy = LineageStrategy::new();
    for (op, &pick) in picks.iter().enumerate() {
        strategy.set(op as u32, sets[pick % sets.len()].clone());
    }
    strategy
}

/// Sorted `(key, value)` byte pairs of one datastore.
type Snapshot = Vec<(Vec<u8>, Vec<u8>)>;
/// Per operator, per strategy-datastore snapshots of one run.
type RunSnapshots = Vec<Vec<Snapshot>>;

/// Executes the workflow and returns each operator's datastore snapshots
/// (sorted key/value bytes per store).
fn run_capture(
    rows: u32,
    cols: u32,
    batch_size: usize,
    picks: &[usize],
    configure: impl FnOnce(&mut Runtime),
    shutdown_instead_of_flush: bool,
) -> RunSnapshots {
    let wf = workflow();
    let mut rt = Runtime::in_memory();
    rt.set_strategy(assignment(picks));
    configure(&mut rt);
    let mut engine = Engine::new();
    engine.set_capture_batch_size(batch_size);
    let run = engine
        .execute(&wf, &externals(rows, cols), &mut rt)
        .expect("parity workload executes");
    if shutdown_instead_of_flush {
        // The drain-on-shutdown path: joining the flushers must apply
        // everything still staged before the first datastore access.
        rt.shutdown_capture().expect("drain on shutdown");
    } else {
        rt.flush_capture().expect("flush barrier");
    }
    (0..3u32)
        .map(|op| {
            rt.datastores(run.run_id, op)
                .iter()
                .map(|ds| ds.snapshot())
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn async_capture_is_byte_identical_across_depths_and_flushers(
        rows in 3u32..10,
        cols in 3u32..10,
        batch_size in 1usize..48,
        picks in prop::collection::vec(0usize..4, 3..4),
    ) {
        let reference = run_capture(rows, cols, batch_size, &picks, |_| {}, false);
        // The reference stores pairs for every operator.
        prop_assert!(reference.iter().any(|stores| !stores.is_empty()));
        for (i, &queue_depth) in QUEUE_DEPTHS.iter().enumerate() {
            for (j, &flushers) in FLUSHER_COUNTS.iter().enumerate() {
                let snapshots = run_capture(
                    rows,
                    cols,
                    batch_size,
                    &picks,
                    |rt| {
                        rt.set_capture_mode(CaptureMode::Async);
                        rt.set_capture_config(CaptureConfig {
                            queue_depth,
                            flushers,
                            policy: OverflowPolicy::Block,
                        });
                    },
                    // Alternate harvest paths so both the flush barrier and
                    // drain-on-shutdown are exercised across the matrix.
                    (i + j) % 2 == 1,
                );
                prop_assert!(
                    snapshots == reference,
                    "async snapshots diverge from sync at depth={queue_depth} flushers={flushers}"
                );
            }
        }
    }

    #[test]
    fn async_capture_statistics_match_sync(
        rows in 3u32..8,
        batch_size in 1usize..16,
        picks in prop::collection::vec(0usize..4, 3..4),
    ) {
        // Pair/byte accounting (what the optimizer's cost model reads) must
        // not depend on which thread stored the batches.
        let run_stats = |configure: fn(&mut Runtime)| {
            let wf = workflow();
            let mut rt = Runtime::in_memory();
            rt.set_strategy(assignment(&picks));
            configure(&mut rt);
            let mut engine = Engine::new();
            engine.set_capture_batch_size(batch_size);
            let run = engine
                .execute(&wf, &externals(rows, rows), &mut rt)
                .expect("workload executes");
            rt.flush_capture().expect("flush barrier");
            let agg = rt.capture_stats(run.run_id);
            (agg.pairs, agg.bytes)
        };
        let (sync_pairs, sync_bytes) = run_stats(|_| {});
        let (async_pairs, async_bytes) = run_stats(|rt| {
            rt.set_capture_mode(CaptureMode::Async);
        });
        prop_assert_eq!(async_pairs, sync_pairs);
        prop_assert_eq!(async_bytes, sync_bytes);
    }
}
