//! Exhaustive concurrency model checking of the capture and parallel
//! runtimes (build with `RUSTFLAGS="--cfg loom" cargo test -p subzero --test
//! loom`).
//!
//! Each test body runs under [`loom::model`], which executes it once per
//! *schedule*: every interleaving of the participating threads at mutex,
//! condvar and atomic granularity is explored, so an assertion here holds
//! under every ordering the sync API admits — not just the ones the host
//! scheduler happens to produce.  The production code is untouched: it
//! imports its primitives from `subzero::sync`, which under `--cfg loom`
//! resolves to the model-checking shim these tests drive.
//!
//! The shim has no partial-order reduction, so bodies are deliberately
//! small (2–3 threads, a handful of staged items); test-harness
//! instrumentation (result vectors, counters) uses plain `std` primitives
//! on purpose — the scheduler serializes model threads, so they are never
//! contended and add no scheduling points of their own.

#![cfg(loom)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex as StdMutex;

use subzero::capture::{flusher_loop, BoundedQueue, Job, OverflowPolicy, Shard, ShardState};
use subzero::sync::thread;
use subzero::sync::{lock_or_recover, Arc, Mutex};
use subzero_engine::executor::CaptureError;

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

#[test]
fn queue_is_fifo_under_every_schedule() {
    loom::model(|| {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(2, OverflowPolicy::Block));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..3 {
                    assert!(q.push(i).unwrap(), "Block policy never sheds");
                }
            })
        };
        let mut received = Vec::new();
        for _ in 0..3 {
            received.push(q.pop().expect("queue is not closed"));
            q.task_done();
        }
        producer.join().unwrap();
        assert_eq!(received, vec![0, 1, 2], "FIFO order violated");
        assert_eq!(q.dropped(), 0);
    });
}

#[test]
fn block_policy_backpressures_instead_of_dropping() {
    loom::model(|| {
        // Depth 1 forces the producer through the blocking wait for every
        // schedule in which it outruns the consumer.
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        let received = Arc::new(StdMutex::new(Vec::new()));
        let consumer = {
            let q = Arc::clone(&q);
            let received = Arc::clone(&received);
            thread::spawn(move || {
                while let Some(v) = q.pop() {
                    received.lock().unwrap().push(v);
                    q.task_done();
                }
            })
        };
        for i in 0..3 {
            assert!(q.push(i).unwrap());
        }
        q.close();
        consumer.join().unwrap();
        assert_eq!(*received.lock().unwrap(), vec![0, 1, 2]);
        assert_eq!(q.dropped(), 0, "Block policy must never shed");
    });
}

#[test]
fn drop_newest_sheds_exactly_the_overflow() {
    loom::model(|| {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1, OverflowPolicy::DropNewest));
        let received = Arc::new(StdMutex::new(Vec::new()));
        let consumer = {
            let q = Arc::clone(&q);
            let received = Arc::clone(&received);
            thread::spawn(move || {
                while let Some(v) = q.pop() {
                    received.lock().unwrap().push(v);
                    q.task_done();
                }
            })
        };
        let mut accepted = 0u64;
        for i in 0..3 {
            if q.push(i).unwrap() {
                accepted += 1;
            }
        }
        q.close();
        consumer.join().unwrap();
        let received = received.lock().unwrap();
        // Accounting: every batch is either delivered or counted as shed.
        assert_eq!(
            received.len() as u64,
            accepted,
            "accepted batches are delivered"
        );
        assert_eq!(accepted + q.dropped(), 3, "shed batches are counted");
        // Whatever was shed, what survives is still in emission order.
        assert!(
            received.windows(2).all(|w| w[0] < w[1]),
            "order violated: {received:?}"
        );
    });
}

#[test]
fn fail_wakes_blocked_producer_with_error() {
    loom::model(|| {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        assert!(q.push(0).unwrap());
        let failer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.fail())
        };
        // The queue is full and nothing ever pops: only fail() can release
        // this push.  In schedules where fail() lands first the push errors
        // immediately; in the rest it blocks and must be woken.  Either way
        // it returns an error rather than hanging (a hang is reported by the
        // model as a deadlock).
        assert!(
            q.push(1).is_err(),
            "blocked producer must error after fail()"
        );
        failer.join().unwrap();
        assert!(q.is_failed());
    });
}

#[test]
fn close_drains_staged_items_before_none() {
    loom::model(|| {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4, OverflowPolicy::Block));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                    q.task_done();
                }
                got
            })
        };
        assert!(q.push(0).unwrap());
        assert!(q.push(1).unwrap());
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![0, 1], "close() must drain staged items in order");
        assert!(q.push(2).is_err(), "push after close errors");
    });
}

#[test]
fn wait_idle_covers_in_flight_items() {
    loom::model(|| {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4, OverflowPolicy::Block));
        let done = Arc::new(AtomicUsize::new(0));
        let consumer = {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                while let Some(_v) = q.pop() {
                    // The window between pop() and task_done() is exactly
                    // what wait_idle() must not miss.
                    done.fetch_add(1, Ordering::SeqCst);
                    q.task_done();
                }
            })
        };
        q.push(0).unwrap();
        q.push(1).unwrap();
        q.wait_idle();
        assert_eq!(
            done.load(Ordering::SeqCst),
            2,
            "wait_idle returned while items were staged or in flight"
        );
        q.close();
        consumer.join().unwrap();
    });
}

// ---------------------------------------------------------------------------
// Shard sequencing + the real flusher loop
// ---------------------------------------------------------------------------

/// Stages `seqs` as jobs of one shard, runs `flushers` copies of the real
/// [`flusher_loop`] over them (applying `record`), and returns
/// `(applied-in-order, recorded error)`.
fn run_flushers(
    seqs: &[u64],
    flushers: usize,
    record: impl Fn(u64, &StdMutex<Vec<u64>>) + Sync + Send + Clone + 'static,
) -> (Vec<u64>, Option<CaptureError>) {
    let shard = Arc::new(Shard::new(Vec::new()));
    let queue: Arc<BoundedQueue<Job<u64>>> =
        Arc::new(BoundedQueue::new(seqs.len().max(1), OverflowPolicy::Block));
    let error = Arc::new(Mutex::new(None));
    let applied = Arc::new(StdMutex::new(Vec::new()));
    // Stage everything up front: the interesting concurrency is flushers
    // racing each other through wait_turn/advance, not the staging.
    for &seq in seqs {
        queue
            .push(Job {
                shard: Arc::clone(&shard),
                seq,
                batch: seq,
            })
            .unwrap();
    }
    queue.close();
    let handles: Vec<_> = (0..flushers)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let error = Arc::clone(&error);
            let applied = Arc::clone(&applied);
            let record = record.clone();
            thread::spawn(move || {
                flusher_loop(&queue, &error, |_state: &mut ShardState, batch: &u64| {
                    record(*batch, &applied);
                });
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let applied = applied.lock().unwrap().clone();
    let error = lock_or_recover(&error).clone();
    (applied, error)
}

#[test]
fn flushers_apply_shard_batches_in_seq_order() {
    loom::model(|| {
        // Two flushers race over two batches of one shard: whichever pops
        // seq 1 first must wait until seq 0 has been applied.
        let (applied, error) = run_flushers(&[0, 1], 2, |seq, applied| {
            applied.lock().unwrap().push(seq);
        });
        assert_eq!(applied, vec![0, 1], "batches applied out of order");
        assert!(error.is_none());
    });
}

#[test]
fn abandoned_head_seq_never_stalls_successors() {
    loom::model(|| {
        // Seq 0 was shed by the producer; only seq 1 is staged.  The
        // abandon() races the flusher's wait_turn(1): in every schedule the
        // flusher must still apply seq 1 (a stall is a model deadlock).
        let shard = Arc::new(Shard::new(Vec::new()));
        let queue: Arc<BoundedQueue<Job<u64>>> =
            Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        let error = Arc::new(Mutex::new(None));
        let applied = Arc::new(StdMutex::new(Vec::new()));
        queue
            .push(Job {
                shard: Arc::clone(&shard),
                seq: 1,
                batch: 1u64,
            })
            .unwrap();
        queue.close();
        let flusher = {
            let queue = Arc::clone(&queue);
            let error = Arc::clone(&error);
            let applied = Arc::clone(&applied);
            thread::spawn(move || {
                flusher_loop(&queue, &error, |_state: &mut ShardState, batch: &u64| {
                    applied.lock().unwrap().push(*batch);
                });
            })
        };
        shard.abandon(0);
        flusher.join().unwrap();
        assert_eq!(*applied.lock().unwrap(), vec![1]);
    });
}

#[test]
fn abandoned_future_seq_is_skipped_when_reached() {
    loom::model(|| {
        // Seqs 0 and 2 are staged; seq 1 was shed.  abandon(1) races the
        // flusher applying seq 0: whether the abandon lands before or after
        // the sequence reaches 1, seq 2 must still be applied.
        let shard = Arc::new(Shard::new(Vec::new()));
        let queue: Arc<BoundedQueue<Job<u64>>> =
            Arc::new(BoundedQueue::new(2, OverflowPolicy::Block));
        let error = Arc::new(Mutex::new(None));
        let applied = Arc::new(StdMutex::new(Vec::new()));
        for seq in [0u64, 2] {
            queue
                .push(Job {
                    shard: Arc::clone(&shard),
                    seq,
                    batch: seq,
                })
                .unwrap();
        }
        queue.close();
        let flusher = {
            let queue = Arc::clone(&queue);
            let error = Arc::clone(&error);
            let applied = Arc::clone(&applied);
            thread::spawn(move || {
                flusher_loop(&queue, &error, |_state: &mut ShardState, batch: &u64| {
                    applied.lock().unwrap().push(*batch);
                });
            })
        };
        shard.abandon(1);
        flusher.join().unwrap();
        assert_eq!(*applied.lock().unwrap(), vec![0, 2]);
    });
}

#[test]
fn flusher_panic_fails_queue_and_records_error() {
    loom::model(|| {
        // The first batch's apply panics.  The real loop must catch it,
        // record the error, fail the queue, fast-drain the second batch
        // without applying it, and leave wait_idle() releasable.
        let shard = Arc::new(Shard::new(Vec::new()));
        let queue: Arc<BoundedQueue<Job<u64>>> =
            Arc::new(BoundedQueue::new(2, OverflowPolicy::Block));
        let error = Arc::new(Mutex::new(None));
        let applied = Arc::new(StdMutex::new(Vec::new()));
        for seq in [0u64, 1] {
            queue
                .push(Job {
                    shard: Arc::clone(&shard),
                    seq,
                    batch: seq,
                })
                .unwrap();
        }
        queue.close();
        let flusher = {
            let queue = Arc::clone(&queue);
            let error = Arc::clone(&error);
            let applied = Arc::clone(&applied);
            thread::spawn(move || {
                flusher_loop(&queue, &error, |_state: &mut ShardState, batch: &u64| {
                    if *batch == 0 {
                        panic!("injected store failure");
                    }
                    applied.lock().unwrap().push(*batch);
                });
            })
        };
        queue.wait_idle();
        flusher.join().unwrap();
        assert!(queue.is_failed(), "a flusher panic must fail the queue");
        let recorded = lock_or_recover(&error).clone();
        let msg = format!("{}", recorded.expect("panic must be recorded"));
        assert!(
            msg.contains("injected store failure"),
            "lost panic message: {msg}"
        );
        assert!(
            applied.lock().unwrap().is_empty(),
            "batches after a failure must fast-drain, not apply"
        );
    });
}

// ---------------------------------------------------------------------------
// parallel helpers
// ---------------------------------------------------------------------------

#[test]
fn parallel_map_preserves_order_under_every_schedule() {
    loom::model(|| {
        let items = [10u32, 20, 30];
        let out = subzero::parallel::parallel_map_min(&items, 2, 2, |i, &v| v + i as u32);
        assert_eq!(out, vec![10, 21, 32], "fan-out reordered results");
    });
}

#[test]
fn for_each_mut_runs_each_item_exactly_once() {
    loom::model(|| {
        let mut items = vec![0u64; 3];
        subzero::parallel::for_each_mut(&mut items, true, |i, v| *v += i as u64 + 1);
        assert_eq!(items, vec![1, 2, 3]);
    });
}
