//! `cargo xtask` — workspace correctness tooling.
//!
//! `cargo xtask lint` runs the project-specific, deny-by-default lints that
//! `rustc`/`clippy` cannot express (they encode *this* workspace's
//! invariants), printing `file:line: [lint] message` diagnostics and exiting
//! non-zero on any hit:
//!
//! * `sync-gateway` — all sync/thread primitives must come from
//!   `subzero::sync` (the loom-checkable gateway), never `std::sync` /
//!   `std::thread` directly; code that bypasses the gateway silently escapes
//!   the `--cfg loom` model checker.  `std::sync::Arc`/`Weak` are exempt
//!   (pure reference counting, re-exported unchanged under both cfgs), as
//!   are test regions, the shims and this tool.
//! * `lock-unwrap` — library code must not `.unwrap()`/`.expect()` lock
//!   results: a panicking holder would poison the mutex and cascade one
//!   failure into a wedged runtime.  Use
//!   `subzero::sync::{lock_or_recover, wait_or_recover}`.
//! * `hot-loop-timing` — no `Instant::now` in the codec/encode hot paths
//!   (`crates/array`, `crates/store`, `crates/core/src/encoder.rs`): timing
//!   belongs to the runtime/statistics layers; a clock read per element
//!   wrecks the arena encode throughput the benches guard.
//! * `unsafe-outside-mmap` — `subzero-store` keeps every `unsafe` block in
//!   `crates/store/src/mmap.rs` (the audited mmap read-path module); the
//!   token anywhere else in the crate's library code is rejected so the
//!   zero-copy surface stays reviewable in one place.
//! * `bench-stanza-drift` — every key in the committed `BENCH_*.json`
//!   snapshots must be declared in `ci/bench_guard.py`'s `STANZA_KEYS`
//!   table (and vice versa), so the CI guard can never silently ignore a
//!   renamed or newly-added stanza.
//!
//! The lints are text-based by design: no `syn`, no network, no
//! dependencies — they run anywhere the repository checks out.  Each lint's
//! firing condition is pinned by a self-test seeding a violation (`cargo
//! test -p xtask`).

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// One lint hit, pointing at a repository-relative file and 1-based line.
#[derive(Debug, PartialEq, Eq)]
struct Diagnostic {
    file: String,
    line: usize,
    lint: &'static str,
    message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

fn diag(file: &str, line: usize, lint: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        lint,
        message,
    }
}

// ---------------------------------------------------------------------------
// Source-text machinery shared by the Rust-source lints
// ---------------------------------------------------------------------------

/// Strips a trailing `//` line comment, respecting (naively) string
/// literals so `"https://…"` is not treated as a comment start.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1, // skip the escaped char
            b'"' => in_string = !in_string,
            b'/' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Marks the lines belonging to `#[cfg(test)]` / `#[cfg(all(test, …))]` /
/// `#[test]` regions (the attribute, the item it covers, and everything
/// inside its braces).  Test code may use `std` primitives and unwrap locks
/// freely — poisoning a test's own mutex fails only that test.
fn test_region_mask(content: &str) -> Vec<bool> {
    let lines: Vec<&str> = content.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        let is_test_attr = trimmed.starts_with("#[cfg(test)]")
            || trimmed.starts_with("#[cfg(all(test")
            || trimmed.starts_with("#[test]");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Mask from the attribute through the end of the annotated item:
        // track brace depth (comments stripped) until it closes, or stop at
        // the first `;` for a braceless item like `mod tests;`.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            let code = strip_line_comment(lines[j]);
            for b in code.bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened && code.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Whether the whole file is test/tooling territory where the Rust-source
/// lints do not apply.
fn file_is_exempt(path: &str) -> bool {
    path.starts_with("crates/shims/")
        || path.starts_with("xtask/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// The one module allowed to name `std::sync`/`std::thread`: the gateway
/// those names are banned in favour of.
fn is_sync_gateway(path: &str) -> bool {
    path == "crates/core/src/sync.rs"
}

/// Store-crate library files where `unsafe-outside-mmap` applies: everything
/// under `crates/store/src/` except the sanctioned mmap module itself.
fn is_unsafe_restricted(path: &str) -> bool {
    path.starts_with("crates/store/src/") && path != "crates/store/src/mmap.rs"
}

/// Whether one (comment-stripped) line of code contains the `unsafe` keyword
/// as a whole token.
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let at = from + pos;
        let end = at + "unsafe".len();
        let boundary = |b: u8| !(b.is_ascii_alphanumeric() || b == b'_');
        if (at == 0 || boundary(bytes[at - 1])) && (end == bytes.len() || boundary(bytes[end])) {
            return true;
        }
        from = end;
    }
    false
}

/// Files on the codec/encode hot path, where `hot-loop-timing` applies.
fn is_hot_path(path: &str) -> bool {
    path.starts_with("crates/array/src/")
        || path.starts_with("crates/store/src/")
        || path == "crates/core/src/encoder.rs"
}

// ---------------------------------------------------------------------------
// L1: sync-gateway
// ---------------------------------------------------------------------------

/// Reports direct `std::sync`/`std::thread` mentions on one (comment- and
/// test-stripped) line of code.
fn sync_gateway_hits(code: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for (needle, allowed) in [
        ("std::sync", &["::Arc", "::Weak"][..]),
        ("std::thread", &[][..]),
    ] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(needle) {
            let at = from + pos;
            let rest = &code[at + needle.len()..];
            let exempt = allowed.iter().any(|suffix| {
                rest.strip_prefix(suffix).is_some_and(|after| {
                    !after
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                })
            });
            // `std::sync` followed by `::atomic`, `::{…}`, a bare `;` or
            // anything else non-exempt is a violation.
            if !exempt {
                hits.push(needle);
                break; // one diagnostic per needle per line is enough
            }
            from = at + needle.len();
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// L2: lock-unwrap
// ---------------------------------------------------------------------------

/// Reports panicking lock-result handling on one line of code.
fn lock_unwrap_hits(code: &str) -> Vec<&'static str> {
    const PATTERNS: &[&str] = &[
        ".lock().unwrap()",
        ".lock().expect(",
        ".try_lock().unwrap()",
        ".try_lock().expect(",
        ".read().unwrap()",
        ".read().expect(",
        ".write().unwrap()",
        ".write().expect(",
    ];
    let mut hits: Vec<&'static str> = PATTERNS
        .iter()
        .copied()
        .filter(|p| code.contains(p))
        .collect();
    // Condvar waits: `.wait(guard).unwrap()` and friends.
    if (code.contains(".wait(") || code.contains(".wait_timeout("))
        && (code.contains(").unwrap()") || code.contains(").expect("))
    {
        hits.push(".wait(..).unwrap()");
    }
    hits
}

// ---------------------------------------------------------------------------
// Rust-source lint driver
// ---------------------------------------------------------------------------

/// Runs the per-file Rust-source lints over `content` as if it lived at
/// repository-relative `path`.
fn lint_rust_source(path: &str, content: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if file_is_exempt(path) {
        return out;
    }
    let mask = test_region_mask(content);
    for (idx, raw) in content.lines().enumerate() {
        if mask[idx] {
            continue;
        }
        let code = strip_line_comment(raw);
        let line = idx + 1;
        if !is_sync_gateway(path) {
            for needle in sync_gateway_hits(code) {
                out.push(diag(
                    path,
                    line,
                    "sync-gateway",
                    format!(
                        "direct `{needle}` use bypasses the `subzero::sync` gateway \
                         and escapes the loom model checker (only `std::sync::Arc`/`Weak` \
                         are exempt)"
                    ),
                ));
            }
        }
        for pattern in lock_unwrap_hits(code) {
            out.push(diag(
                path,
                line,
                "lock-unwrap",
                format!(
                    "`{pattern}` panics on a poisoned lock and cascades one failure \
                     into a wedged runtime; use `subzero::sync::lock_or_recover` / \
                     `wait_or_recover`"
                ),
            ));
        }
        if is_unsafe_restricted(path) && has_unsafe_token(code) {
            out.push(diag(
                path,
                line,
                "unsafe-outside-mmap",
                "`unsafe` outside `crates/store/src/mmap.rs`: the store crate \
                 confines all unsafe code to the audited mmap module so the \
                 zero-copy surface stays reviewable in one place"
                    .to_string(),
            ));
        }
        if is_hot_path(path) && code.contains("Instant::now") {
            out.push(diag(
                path,
                line,
                "hot-loop-timing",
                "`Instant::now` on the codec/encode hot path: a clock read per \
                 element wrecks arena-encode throughput — time at the \
                 runtime/statistics layer instead"
                    .to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L4: bench-stanza-drift
// ---------------------------------------------------------------------------

/// The declared schema of one snapshot: exact top-level and `workload` key
/// sets, with the guard-file line the entry starts on.
#[derive(Debug, Default)]
struct DeclaredStanza {
    top: BTreeSet<String>,
    workload: BTreeSet<String>,
    line: usize,
}

/// Extracts the `STANZA_KEYS` table from `ci/bench_guard.py` source text.
/// The table is a plain dict of string lists precisely so this parser (and
/// human reviewers) never need a Python interpreter.
fn parse_stanza_keys(guard_src: &str) -> Vec<(String, DeclaredStanza)> {
    let mut entries: Vec<(String, DeclaredStanza)> = Vec::new();
    let mut in_table = false;
    let mut section: Option<&'static str> = None;
    for (idx, raw) in guard_src.lines().enumerate() {
        let line = raw.trim();
        if !in_table {
            if line.starts_with("STANZA_KEYS") && line.contains('{') {
                in_table = true;
            }
            continue;
        }
        if line.starts_with('}') && !line.starts_with("},") {
            break; // end of STANZA_KEYS
        }
        if let Some(rest) = line.strip_prefix('"') {
            if let Some(end) = rest.find('"') {
                let name = &rest[..end];
                let after = &rest[end + 1..];
                if name.starts_with("BENCH_") && after.contains(':') && after.contains('{') {
                    entries.push((
                        name.to_string(),
                        DeclaredStanza {
                            line: idx + 1,
                            ..DeclaredStanza::default()
                        },
                    ));
                    section = None;
                    continue;
                }
                if name == "top" || name == "workload" {
                    section = Some(if name == "top" { "top" } else { "workload" });
                }
            }
        }
        if let (Some(sec), Some((_, entry))) = (section, entries.last_mut()) {
            let target = if sec == "top" {
                &mut entry.top
            } else {
                &mut entry.workload
            };
            // Collect every quoted string on the line except the section
            // label itself.
            let mut rest = line;
            let mut strings = Vec::new();
            while let Some(start) = rest.find('"') {
                let tail = &rest[start + 1..];
                let Some(end) = tail.find('"') else { break };
                strings.push(&tail[..end]);
                rest = &tail[end + 1..];
            }
            for s in strings {
                if s != sec {
                    target.insert(s.to_string());
                }
            }
            if line.contains(']') {
                section = None;
            }
        }
    }
    entries
}

/// Object keys found in one snapshot section, each with its 1-based line.
type KeyedLines = Vec<(String, usize)>;

/// Extracts the top-level and `workload` object keys (with 1-based lines)
/// from a `BENCH_*.json` snapshot.  A tiny event scanner, not a full JSON
/// parser: it tracks object/array nesting and which object each key string
/// belongs to — keys inside `results` arrays are deliberately out of scope.
fn json_stanza_keys(content: &str) -> (KeyedLines, KeyedLines) {
    enum Frame {
        Obj(Option<String>),
        Arr,
    }
    let mut top = Vec::new();
    let mut workload = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending_key: Option<String> = None;
    let mut line = 1usize;
    let mut chars = content.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\n' => line += 1,
            '"' => {
                let mut s = String::new();
                let mut escaped = false;
                for c in chars.by_ref() {
                    if escaped {
                        s.push(c);
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        break;
                    } else {
                        if c == '\n' {
                            line += 1;
                        }
                        s.push(c);
                    }
                }
                // A string is a key iff the next non-whitespace char is ':'.
                let mut is_key = false;
                while let Some(&n) = chars.peek() {
                    if n.is_whitespace() {
                        if n == '\n' {
                            line += 1;
                        }
                        chars.next();
                    } else {
                        is_key = n == ':';
                        break;
                    }
                }
                if is_key && matches!(stack.last(), Some(Frame::Obj(_))) {
                    if stack.len() == 1 {
                        top.push((s.clone(), line));
                    } else if stack.len() == 2
                        && matches!(&stack[1], Frame::Obj(Some(k)) if k == "workload")
                    {
                        workload.push((s.clone(), line));
                    }
                    pending_key = Some(s);
                }
            }
            '{' => stack.push(Frame::Obj(pending_key.take())),
            '[' => {
                pending_key = None;
                stack.push(Frame::Arr);
            }
            '}' | ']' => {
                stack.pop();
            }
            _ => {}
        }
    }
    (top, workload)
}

/// Cross-checks the committed snapshots against the guard's declared
/// schema, in both directions.
fn lint_bench_stanzas(
    guard_path: &str,
    guard_src: &str,
    snapshots: &[(String, String)],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let declared = parse_stanza_keys(guard_src);
    if declared.is_empty() {
        out.push(diag(
            guard_path,
            1,
            "bench-stanza-drift",
            "no STANZA_KEYS table found — the bench guard cannot pin snapshot schemas".to_string(),
        ));
        return out;
    }
    for (name, content) in snapshots {
        let Some((_, decl)) = declared.iter().find(|(n, _)| n == name) else {
            out.push(diag(
                name,
                1,
                "bench-stanza-drift",
                format!("snapshot has no STANZA_KEYS entry in {guard_path}"),
            ));
            continue;
        };
        let (top, workload) = json_stanza_keys(content);
        for (section, found, expected) in [
            ("top-level", &top, &decl.top),
            ("workload", &workload, &decl.workload),
        ] {
            for (key, line) in found {
                if !expected.contains(key) {
                    out.push(diag(
                        name,
                        *line,
                        "bench-stanza-drift",
                        format!(
                            "{section} key {key:?} is not declared in {guard_path} \
                             STANZA_KEYS — the CI guard would silently ignore it"
                        ),
                    ));
                }
            }
            let found_names: BTreeSet<&str> = found.iter().map(|(k, _)| k.as_str()).collect();
            for key in expected {
                if !found_names.contains(key.as_str()) {
                    out.push(diag(
                        guard_path,
                        decl.line,
                        "bench-stanza-drift",
                        format!(
                            "{name}: declared {section} key {key:?} is missing from the snapshot"
                        ),
                    ));
                }
            }
        }
    }
    for (name, decl) in &declared {
        if !snapshots.iter().any(|(n, _)| n == name) {
            out.push(diag(
                guard_path,
                decl.line,
                "bench-stanza-drift",
                format!("STANZA_KEYS declares {name} but no such snapshot exists"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Filesystem driver
// ---------------------------------------------------------------------------

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn run_lints(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut diagnostics = Vec::new();
    let mut files = Vec::new();
    for top in ["crates", "xtask"] {
        walk_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    if files.is_empty() {
        return Err(format!("no Rust sources under {}", root.display()));
    }
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let content =
            std::fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        diagnostics.extend(lint_rust_source(&rel, &content));
    }
    let guard_rel = "ci/bench_guard.py";
    let guard_src = std::fs::read_to_string(root.join(guard_rel))
        .map_err(|e| format!("read {guard_rel}: {e}"))?;
    let mut snapshots = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                let content = std::fs::read_to_string(entry.path())
                    .map_err(|e| format!("read {name}: {e}"))?;
                snapshots.push((name, content));
            }
        }
    }
    snapshots.sort();
    diagnostics.extend(lint_bench_stanzas(guard_rel, &guard_src, &snapshots));
    diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diagnostics)
}

fn usage() -> ! {
    eprintln!("usage: cargo xtask lint [--root <repo-root>]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--root" => root = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    if cmd != Some("lint") {
        usage();
    }
    let root = root.unwrap_or_else(|| {
        // xtask always lives at <root>/xtask.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask has a parent directory")
            .to_path_buf()
    });
    match run_lints(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                println!("{d}");
            }
            eprintln!("xtask lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Self-tests: every lint must fire on a seeded violation and stay quiet on
// the sanctioned idioms.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    const LIB_PATH: &str = "crates/core/src/runtime.rs";

    fn lints_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn sync_gateway_fires_on_direct_std_sync() {
        let src = "use std::sync::Mutex;\n";
        let diags = lint_rust_source(LIB_PATH, src);
        assert_eq!(lints_of(&diags), vec!["sync-gateway"]);
        assert_eq!(diags[0].line, 1);
        let src = "fn f() { let t = std::thread::spawn(|| {}); t.join().unwrap(); }\n";
        assert_eq!(
            lints_of(&lint_rust_source(LIB_PATH, src)),
            vec!["sync-gateway"]
        );
    }

    #[test]
    fn sync_gateway_allows_arc_weak_gateway_and_tests() {
        assert!(lint_rust_source(LIB_PATH, "use std::sync::Arc;\n").is_empty());
        assert!(lint_rust_source(LIB_PATH, "use std::sync::Weak;\n").is_empty());
        // `Arc` in a braced list does not launder the rest of the list.
        assert_eq!(
            lints_of(&lint_rust_source(
                LIB_PATH,
                "use std::sync::{Arc, Mutex};\n"
            )),
            vec!["sync-gateway"]
        );
        // The gateway itself and the shims may name std primitives.
        assert!(
            lint_rust_source("crates/core/src/sync.rs", "pub use std::sync::Mutex;\n").is_empty()
        );
        assert!(
            lint_rust_source("crates/shims/loom/src/lib.rs", "use std::sync::Mutex;\n").is_empty()
        );
        // Test regions are exempt.
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert!(lint_rust_source(LIB_PATH, src).is_empty());
        let src = "#[cfg(all(test, not(loom)))]\nmod tests {\n    use std::thread;\n}\n";
        assert!(lint_rust_source(LIB_PATH, src).is_empty());
        // Comments don't count.
        assert!(lint_rust_source(LIB_PATH, "// std::sync::Mutex is banned\n").is_empty());
    }

    #[test]
    fn lock_unwrap_fires_on_panicking_lock_results() {
        let src = "fn f(m: &Mutex<u32>) { *m.lock().unwrap() += 1; }\n";
        let diags = lint_rust_source(LIB_PATH, src);
        assert_eq!(lints_of(&diags), vec!["lock-unwrap"]);
        let src = "fn f() { let g = cv.wait(g).unwrap(); }\n";
        assert_eq!(
            lints_of(&lint_rust_source(LIB_PATH, src)),
            vec!["lock-unwrap"]
        );
        let src = "fn f() { m.lock().expect(\"poisoned\"); }\n";
        assert_eq!(
            lints_of(&lint_rust_source(LIB_PATH, src)),
            vec!["lock-unwrap"]
        );
    }

    #[test]
    fn lock_unwrap_allows_recovery_and_tests() {
        // The sanctioned recovery idiom does not match.
        let src = "let g = mutex.lock().unwrap_or_else(|p| p.into_inner());\n";
        assert!(lint_rust_source(LIB_PATH, src).is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { m.lock().unwrap(); }\n}\n";
        assert!(lint_rust_source(LIB_PATH, src).is_empty());
        // io::Read-style calls with arguments are not lock results.
        let src = "fn f() { file.read(&mut buf).unwrap(); }\n";
        assert!(lint_rust_source(LIB_PATH, src).is_empty());
    }

    #[test]
    fn daemon_crate_is_covered_by_the_workspace_lints() {
        // The server crate is deliberately *not* a sync gateway: its shard
        // workers and connection threads must go through `subzero::sync`
        // like every other library crate.
        let src = "fn f() { let t = std::thread::spawn(|| {}); t.join().unwrap(); }\n";
        assert_eq!(
            lints_of(&lint_rust_source("crates/server/src/shard.rs", src)),
            vec!["sync-gateway"]
        );
        let src = "use std::sync::mpsc;\n";
        assert_eq!(
            lints_of(&lint_rust_source("crates/server/src/server.rs", src)),
            vec!["sync-gateway"]
        );
        let src = "fn f(m: &Mutex<u32>) { *m.lock().unwrap() += 1; }\n";
        assert_eq!(
            lints_of(&lint_rust_source("crates/server/src/server.rs", src)),
            vec!["lock-unwrap"]
        );
        // The wire codec is not on the encode hot path; its integration
        // tests and the daemon binary may drive real threads and sockets.
        let src = "fn encode() { let t = Instant::now(); }\n";
        assert!(lint_rust_source("crates/server/src/protocol.rs", src).is_empty());
        let src = "fn t() { std::thread::sleep(d); m.lock().unwrap(); }\n";
        assert!(lint_rust_source("crates/server/tests/restart.rs", src).is_empty());
    }

    #[test]
    fn hot_loop_timing_fires_only_on_hot_paths() {
        let src = "fn encode() { let t = Instant::now(); }\n";
        assert_eq!(
            lints_of(&lint_rust_source("crates/array/src/lib.rs", src)),
            vec!["hot-loop-timing"]
        );
        assert_eq!(
            lints_of(&lint_rust_source("crates/store/src/kv.rs", src)),
            vec!["hot-loop-timing"]
        );
        assert_eq!(
            lints_of(&lint_rust_source("crates/core/src/encoder.rs", src)),
            vec!["hot-loop-timing"]
        );
        // Timing in the runtime layer is fine.
        assert!(lint_rust_source(LIB_PATH, src).is_empty());
    }

    #[test]
    fn unsafe_outside_mmap_fires_only_in_store_non_mmap_code() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert_eq!(
            lints_of(&lint_rust_source("crates/store/src/kv.rs", src)),
            vec!["unsafe-outside-mmap"]
        );
        assert_eq!(
            lints_of(&lint_rust_source("crates/store/src/codec.rs", src)),
            vec!["unsafe-outside-mmap"]
        );
        // The sanctioned module, other crates, and store tests are exempt.
        assert!(lint_rust_source("crates/store/src/mmap.rs", src).is_empty());
        assert!(lint_rust_source(LIB_PATH, src).is_empty());
        assert!(lint_rust_source("crates/store/tests/stress.rs", src).is_empty());
        // Comments and identifiers containing the word don't count.
        assert!(
            lint_rust_source("crates/store/src/kv.rs", "// unsafe is banned here\n").is_empty()
        );
        assert!(
            lint_rust_source("crates/store/src/kv.rs", "fn not_unsafe_at_all() {}\n").is_empty()
        );
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe {} }\n}\n";
        assert!(lint_rust_source("crates/store/src/kv.rs", src).is_empty());
    }

    #[test]
    fn test_region_mask_tracks_braces() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n    }\n}\nfn b() {}\n";
        let mask = test_region_mask(src);
        assert_eq!(mask, vec![false, true, true, true, true, true, false]);
    }

    const GUARD: &str = r#"
STANZA_KEYS = {
    "BENCH_a.json": {
        "top": ["results", "workload"],
        "workload": ["encode", "workers"],
    },
}
"#;

    #[test]
    fn bench_stanza_clean_when_schema_matches() {
        let snap = r#"{"results": [{"nested": 1}], "workload": {"encode": "arena", "workers": 4}}"#;
        let diags = lint_bench_stanzas(
            "ci/bench_guard.py",
            GUARD,
            &[("BENCH_a.json".into(), snap.into())],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bench_stanza_fires_on_unknown_and_missing_keys() {
        // `extra` is undeclared; `workers` is declared but absent.
        let snap = r#"{"results": [], "extra": 1, "workload": {"encode": "arena"}}"#;
        let diags = lint_bench_stanzas(
            "ci/bench_guard.py",
            GUARD,
            &[("BENCH_a.json".into(), snap.into())],
        );
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("\"extra\"") && m.contains("not declared")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("\"workers\"") && m.contains("missing")),
            "{msgs:?}"
        );
    }

    #[test]
    fn bench_stanza_fires_on_undeclared_snapshot() {
        let diags = lint_bench_stanzas(
            "ci/bench_guard.py",
            GUARD,
            &[("BENCH_new.json".into(), "{}".into())],
        );
        assert!(diags
            .iter()
            .any(|d| d.file == "BENCH_new.json" && d.message.contains("no STANZA_KEYS entry")));
        // And the declared-but-deleted direction.
        let diags = lint_bench_stanzas("ci/bench_guard.py", GUARD, &[]);
        assert!(diags.iter().any(|d| d.message.contains("no such snapshot")));
    }

    #[test]
    fn json_key_scanner_scopes_nesting() {
        let src = r#"{"a": 1, "workload": {"w1": {"deep": 2}, "w2": []}, "b": [{"inner": 3}]}"#;
        let (top, workload) = json_stanza_keys(src);
        let top: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
        let wl: Vec<&str> = workload.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(top, vec!["a", "workload", "b"]);
        assert_eq!(wl, vec!["w1", "w2"], "deep/inner keys must not leak");
    }

    #[test]
    fn lint_runs_clean_on_this_workspace() {
        // The root-level invariant the CI step enforces, kept as a test so
        // `cargo test -p xtask` alone catches drift.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("workspace root")
            .to_path_buf();
        let diags = run_lints(&root).expect("lint run");
        assert!(diags.is_empty(), "workspace lint violations:\n{diags:#?}");
    }
}
